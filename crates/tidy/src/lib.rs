//! `bebop-tidy`: the workspace's in-tree static-analysis pass.
//!
//! Every figure this reproduction regenerates rests on the simulator being
//! *deterministic by construction* — serial, parallel, replayed, resumed and
//! multi-programmed runs must all be bit-identical. Nothing in the language
//! stops a contributor from quietly breaking that with a `RandomState`-seeded
//! `HashMap` in a report path, an unseeded entropy source, or wall-clock time
//! folded into sim state; and the unwrap/cast audits of earlier PRs were done
//! by hand, which means they rot. This crate is a rustc-`tidy`-style checker
//! that walks the workspace's Rust sources and machine-checks those
//! invariants on every CI run.
//!
//! # Rules
//!
//! | ID   | Class        | What it forbids |
//! |------|--------------|-----------------|
//! | D001 | determinism  | hash-based `std` containers (`HashMap`/`HashSet`) anywhere in the workspace — iteration order depends on a per-process random hasher seed |
//! | D002 | determinism  | wall-clock time (`Instant`, `SystemTime`) outside allowlisted timing modules (bench timing, sweep watchdog, store LRU mtimes) |
//! | D003 | determinism  | nondeterministic entropy sources (`thread_rng`, `from_entropy`, `OsRng`, `getrandom`, `RandomState`, `DefaultHasher`, …) — all randomness flows through the seeded `bebop-rand` generators |
//! | R001 | robustness   | `.unwrap()` / `.expect(` / `panic!` / `unreachable!` / `todo!` / `unimplemented!` in non-test, non-`simcheck` library code without an `// INVARIANT:` justification |
//! | S001 | safety       | `unsafe` without a `// SAFETY:` comment on or directly above the line |
//! | S002 | safety       | a compilation unit with no unsafe code that does not declare `#![forbid(unsafe_code)]` |
//! | C001 | casts        | narrowing `as` casts on budget/footprint/length lines without `try_from`/`try_into` or a `// CAST:` justification |
//! | T001 | meta         | malformed `tidy.toml` allowlist entries (missing rule/path, empty reason) |
//! | T002 | meta         | stale `tidy.toml` allowlist entries that no longer match any diagnostic |
//!
//! Diagnostics are structured and stable — `path:line [RULE] message` — and a
//! nonzero exit from the binary fails CI. File-scoped exceptions live in the
//! repo-root `tidy.toml`, each with a mandatory human-readable reason; an
//! allowlist entry that stops matching anything becomes an error itself
//! (T002), so the exception list can only shrink or stay honest.
//!
//! The scanner is lexical, not syntactic: sources are stripped of comments,
//! string/char literals and doc text first (so a rule name *mentioned* in a
//! message or doc comment never trips the rule that polices it), and
//! `#[cfg(test)]` / `#[cfg(feature = "simcheck")]` regions are tracked by
//! brace depth so test-only and sanitizer-only code is exempt from the
//! robustness rules. Justification comments (`// INVARIANT:`, `// SAFETY:`,
//! `// CAST:`) are read from the *raw* lines, where comments still exist.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Where a file sits in the workspace; decides which rules apply.
///
/// The determinism and safety rules (D00x, S001) apply everywhere: a test
/// that iterates a `HashMap` is a flaky test, and unsafe in a bench still
/// needs a safety argument. The robustness and cast rules (R001, C001) are
/// about production error handling, so they apply only to [`FileKind::Src`]
/// code outside `#[cfg(test)]` regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A library/binary source under some `crates/<name>/src/`.
    Src,
    /// An integration test under the repo-root `tests/`.
    TestsDir,
    /// A demo under the repo-root `examples/`.
    Examples,
    /// A plain-main timing harness under some `crates/<name>/benches/`.
    Benches,
}

impl FileKind {
    fn robustness_rules_apply(self) -> bool {
        matches!(self, FileKind::Src)
    }
}

/// One violation: `path:line [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the workspace root, forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier (`D001`, `R001`, …).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub msg: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

// ---------------------------------------------------------------------------
// Source stripping
// ---------------------------------------------------------------------------

/// Returns `source` with comments, string literals and char literals blanked
/// to spaces (newlines preserved), so token scans cannot be fooled by text.
///
/// Handles line comments, nested block comments, escaped `"…"` and `b"…"`
/// strings (including multi-line), raw strings `r"…"`/`r#"…"#`/`br#"…"#`,
/// and char literals (`'x'`, `'\n'`, `'"'`). Lifetimes (`'a`) are preserved.
pub fn strip_source(source: &str) -> String {
    let b = source.as_bytes();
    let mut out = b.to_vec();
    let n = b.len();
    let mut i = 0;
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for o in out.iter_mut().take(to).skip(from) {
            if *o != b'\n' {
                *o = b' ';
            }
        }
    };
    while i < n {
        let c = b[i];
        // Line comment.
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            let mut j = i;
            while j < n && b[j] != b'\n' {
                j += 1;
            }
            blank(&mut out, i, j);
            i = j;
            continue;
        }
        // Block comment (Rust block comments nest).
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if b[j] == b'/' && j + 1 < n && b[j + 1] == b'*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == b'*' && j + 1 < n && b[j + 1] == b'/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            blank(&mut out, i, j);
            i = j;
            continue;
        }
        // Raw string (r"…", r#"…"#, br#"…"#), only when `r` starts a token.
        if (c == b'r' || c == b'b') && !prev_is_ident(b, i) {
            let mut j = i + 1;
            if c == b'b' && j < n && b[j] == b'r' {
                j += 1;
            } else if c == b'b' {
                // `b"…"` byte string: handled by the plain-string arm below
                // when the quote is reached; `b` alone is ordinary code.
                i += 1;
                continue;
            }
            let mut hashes = 0usize;
            while j < n && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == b'"' {
                // Find `"` followed by `hashes` octothorpes.
                let mut k = j + 1;
                'raw: while k < n {
                    if b[k] == b'"' {
                        let mut h = 0usize;
                        while h < hashes && k + 1 + h < n && b[k + 1 + h] == b'#' {
                            h += 1;
                        }
                        if h == hashes {
                            k += 1 + hashes;
                            break 'raw;
                        }
                    }
                    k += 1;
                }
                blank(&mut out, i, k);
                i = k;
                continue;
            }
            // `r` / `br` not followed by a raw string: ordinary identifier.
            i += 1;
            continue;
        }
        // Plain string.
        if c == b'"' {
            let mut j = i + 1;
            while j < n {
                if b[j] == b'\\' {
                    j += 2;
                    continue;
                }
                if b[j] == b'"' {
                    j += 1;
                    break;
                }
                j += 1;
            }
            blank(&mut out, i, j.min(n));
            i = j;
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            if i + 1 < n && b[i + 1] == b'\\' {
                // Escaped char literal: '\n', '\'', '\u{1F600}'.
                let mut j = i + 2;
                while j < n && b[j] != b'\'' {
                    j += 1;
                }
                blank(&mut out, i, (j + 1).min(n));
                i = (j + 1).min(n);
                continue;
            }
            if i + 2 < n && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                // One-char literal, e.g. '"' or '{'.
                blank(&mut out, i, i + 3);
                i += 3;
                continue;
            }
            // Lifetime: keep.
            i += 1;
            continue;
        }
        i += 1;
    }
    // Blanking replaced bytes one-for-one, which keeps multi-byte UTF-8
    // sequences intact outside literals and turns them into spaces inside.
    String::from_utf8_lossy(&out).into_owned()
}

fn prev_is_ident(b: &[u8], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    let p = b[i - 1];
    p.is_ascii_alphanumeric() || p == b'_'
}

/// Whether `ident` occurs in `line` as a whole word (boundaries are
/// non-`[A-Za-z0-9_]`), so `unsafe` does not match `unsafe_code`.
fn has_word(line: &str, ident: &str) -> bool {
    let lb = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find(ident) {
        let at = start + pos;
        let end = at + ident.len();
        let left_ok = at == 0 || !is_ident_byte(lb[at - 1]);
        let right_ok = end >= lb.len() || !is_ident_byte(lb[end]);
        if left_ok && right_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

// ---------------------------------------------------------------------------
// Per-file scanner
// ---------------------------------------------------------------------------

/// Tracks `#[cfg(test)]` / `#[cfg(feature = "simcheck")]` regions by brace
/// depth while a file is scanned top to bottom.
#[derive(Debug, Default)]
struct RegionTracker {
    depth: usize,
    /// An exempting attribute was seen and is waiting for its item's `{`.
    pending: Option<RegionKind>,
    /// Open exempt regions: contents are exempt while `depth > open_depth`.
    open: Vec<(usize, RegionKind)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegionKind {
    Test,
    Simcheck,
}

impl RegionTracker {
    fn in_test(&self) -> bool {
        self.open.iter().any(|(_, k)| *k == RegionKind::Test)
    }

    fn in_simcheck(&self) -> bool {
        self.open.iter().any(|(_, k)| *k == RegionKind::Simcheck)
    }

    /// Observes one line. `stripped` drives the brace count and attribute
    /// detection; `raw` is consulted for the `"simcheck"` feature name,
    /// which lives in a string literal the stripper blanks.
    fn observe(&mut self, stripped: &str, raw: &str) {
        if stripped.contains("#[cfg(test)]") || stripped.contains("#[test]") {
            self.pending = Some(RegionKind::Test);
        } else if stripped.contains("#[cfg(feature =") && raw.contains("\"simcheck\"") {
            self.pending = Some(RegionKind::Simcheck);
        }
        for ch in stripped.chars() {
            match ch {
                '{' => {
                    if let Some(kind) = self.pending.take() {
                        self.open.push((self.depth, kind));
                    }
                    self.depth += 1;
                }
                '}' => {
                    self.depth = self.depth.saturating_sub(1);
                    while matches!(self.open.last(), Some((d, _)) if *d >= self.depth) {
                        self.open.pop();
                    }
                }
                _ => {}
            }
        }
        // An exempt attribute on a braceless item (`#[cfg(test)] use …;`)
        // scopes to that item only; drop the pending marker at the `;`.
        if self.pending.is_some() && !stripped.contains('{') {
            let t = stripped.trim_end();
            if t.ends_with(';') {
                self.pending = None;
            }
        }
    }
}

const ENTROPY_TOKENS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "getrandom",
    "RandomState",
    "DefaultHasher",
];

const PANIC_PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

const NARROW_CASTS: &[&str] = &["u8", "u16", "u32", "usize", "i8", "i16", "i32"];

/// Identifier fragments that mark a line as budget/footprint/length
/// arithmetic — the class of code where a truncating `as` cast has already
/// produced a real bug (the PR 3 u64-µop-budget truncation).
const CAST_CONTEXT_WORDS: &[&str] = &["budget", "footprint", "bytes", "len", "uops", "cap"];

/// How many *code* lines above a violation a justification comment
/// (`// INVARIANT:`, `// SAFETY:`, `// CAST:`) may sit. Comment lines are
/// free: a multi-line `// SAFETY:` block directly above an `unsafe` block
/// counts however long it is, and a justification inside a method chain
/// still covers the `.expect(…)` two code lines below it.
const JUSTIFICATION_LOOKBACK: usize = 3;

/// Absolute cap on the upward walk, so a pathological comment wall cannot
/// make a justification bleed across half a file.
const JUSTIFICATION_MAX_WALK: usize = 40;

fn is_justified(raw_lines: &[&str], idx: usize, marker: &str) -> bool {
    if raw_lines.get(idx).is_some_and(|l| l.contains(marker)) {
        return true;
    }
    let mut code_lines = 0usize;
    for back in 1..=JUSTIFICATION_MAX_WALK {
        let Some(p) = idx.checked_sub(back) else {
            return false;
        };
        let Some(line) = raw_lines.get(p) else {
            return false;
        };
        if line.contains(marker) {
            return true;
        }
        if !line.trim_start().starts_with("//") {
            code_lines += 1;
            if code_lines >= JUSTIFICATION_LOOKBACK {
                return false;
            }
        }
    }
    false
}

/// Scans one file's source text. `path` is used verbatim in diagnostics.
///
/// This is the fixture-testable core: it applies every per-line rule but not
/// the crate-level S002 check, which needs directory context (see
/// [`check_workspace`]).
pub fn check_source(path: &str, source: &str, kind: FileKind) -> Vec<Diagnostic> {
    let stripped = strip_source(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut tracker = RegionTracker::default();
    let mut diags = Vec::new();

    for (idx, s) in stripped.lines().enumerate() {
        let line_no = idx + 1;
        let raw = raw_lines.get(idx).copied().unwrap_or("");
        let in_test = tracker.in_test() || matches!(kind, FileKind::TestsDir);
        let in_simcheck = tracker.in_simcheck();
        // The tracker is advanced *after* the checks so a region's opening
        // line (`mod tests {`) is classified like the code above it; region
        // openers carry no forbidden tokens of their own.
        tracker.observe(s, raw);

        let justified = |marker: &str| is_justified(&raw_lines, idx, marker);

        // D001: hash-seeded containers, everywhere.
        for tok in ["HashMap", "HashSet"] {
            if has_word(s, tok) {
                diags.push(Diagnostic {
                    path: path.to_string(),
                    line: line_no,
                    rule: "D001",
                    msg: format!(
                        "hash-based container `{tok}` (iteration order depends on a \
                         per-process hasher seed); use BTreeMap/BTreeSet or sorted iteration"
                    ),
                });
            }
        }

        // D002: wall-clock time, everywhere (timing modules are allowlisted).
        for tok in ["Instant", "SystemTime"] {
            if has_word(s, tok) {
                diags.push(Diagnostic {
                    path: path.to_string(),
                    line: line_no,
                    rule: "D002",
                    msg: format!(
                        "wall-clock time source `{tok}` outside an allowlisted timing \
                         module; sim-state paths must be deterministic"
                    ),
                });
            }
        }

        // D003: entropy sources, everywhere.
        for tok in ENTROPY_TOKENS {
            if has_word(s, tok) {
                diags.push(Diagnostic {
                    path: path.to_string(),
                    line: line_no,
                    rule: "D003",
                    msg: format!(
                        "nondeterministic entropy source `{tok}`; all randomness must \
                         flow through the seeded bebop-rand generators"
                    ),
                });
            }
        }

        // R001: panicking calls in production library code.
        if kind.robustness_rules_apply() && !in_test && !in_simcheck {
            for pat in PANIC_PATTERNS {
                if s.contains(pat) && !justified("// INVARIANT:") {
                    diags.push(Diagnostic {
                        path: path.to_string(),
                        line: line_no,
                        rule: "R001",
                        msg: format!(
                            "`{pat}` in non-test code; propagate the error or justify \
                             the panic with an `// INVARIANT:` comment"
                        ),
                    });
                }
            }
        }

        // S001: unsafe without a safety argument (everywhere).
        if has_word(s, "unsafe") && !justified("// SAFETY:") {
            diags.push(Diagnostic {
                path: path.to_string(),
                line: line_no,
                rule: "S001",
                msg: "`unsafe` without a `// SAFETY:` comment on or directly above the line"
                    .to_string(),
            });
        }

        // C001: narrowing casts on budget/footprint/length arithmetic.
        if kind.robustness_rules_apply()
            && !in_test
            && has_narrowing_cast(s)
            && line_mentions_cast_context(s)
            && !s.contains("try_from")
            && !s.contains("try_into")
            && !justified("// CAST:")
        {
            diags.push(Diagnostic {
                path: path.to_string(),
                line: line_no,
                rule: "C001",
                msg: "narrowing `as` cast on a budget/footprint/length line; use \
                      try_from/try_into or justify with a `// CAST:` comment"
                    .to_string(),
            });
        }
    }
    diags
}

fn has_narrowing_cast(stripped: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = stripped[start..].find(" as ") {
        let after = &stripped[start + pos + 4..];
        let tok: String = after
            .chars()
            .skip_while(|c| *c == ' ')
            .take_while(|c| c.is_ascii_alphanumeric())
            .collect();
        if NARROW_CASTS.contains(&tok.as_str()) {
            return true;
        }
        start += pos + 4;
    }
    false
}

fn line_mentions_cast_context(stripped: &str) -> bool {
    let lower = stripped.to_ascii_lowercase();
    CAST_CONTEXT_WORDS.iter().any(|w| lower.contains(w))
}

// ---------------------------------------------------------------------------
// Allowlist (tidy.toml)
// ---------------------------------------------------------------------------

/// One file-scoped exception from `tidy.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule ID this entry suppresses (`D002`, …).
    pub rule: String,
    /// Workspace-relative path (forward slashes) the suppression covers.
    pub path: String,
    /// Mandatory human-readable justification.
    pub reason: String,
    /// 1-based line of the `[[allow]]` header, for T001/T002 diagnostics.
    pub line: usize,
}

/// The parsed `tidy.toml` exception list.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// All well-formed entries, in file order.
    pub entries: Vec<AllowEntry>,
}

/// Parses the `tidy.toml` subset: `[[allow]]` tables of `key = "value"`
/// pairs, `#` comments, blank lines. Malformed entries come back as T001
/// diagnostics (against `path_label`) instead of being silently dropped.
pub fn parse_allowlist(path_label: &str, text: &str) -> (Allowlist, Vec<Diagnostic>) {
    let mut list = Allowlist::default();
    let mut diags = Vec::new();
    let mut current: Option<AllowEntry> = None;

    let mut finish = |entry: Option<AllowEntry>, diags: &mut Vec<Diagnostic>| {
        if let Some(e) = entry {
            if e.rule.is_empty() || e.path.is_empty() || e.reason.trim().is_empty() {
                diags.push(Diagnostic {
                    path: path_label.to_string(),
                    line: e.line,
                    rule: "T001",
                    msg: "allowlist entry must set rule, path and a non-empty reason".to_string(),
                });
            } else {
                list.entries.push(e);
            }
        }
    };

    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            finish(current.take(), &mut diags);
            current = Some(AllowEntry {
                rule: String::new(),
                path: String::new(),
                reason: String::new(),
                line: idx + 1,
            });
            continue;
        }
        let parsed = line
            .split_once('=')
            .map(|(k, v)| (k.trim(), v.trim().trim_matches('"').to_string()));
        match (current.as_mut(), parsed) {
            (Some(e), Some(("rule", v))) => e.rule = v,
            (Some(e), Some(("path", v))) => e.path = v,
            (Some(e), Some(("reason", v))) => e.reason = v,
            _ => diags.push(Diagnostic {
                path: path_label.to_string(),
                line: idx + 1,
                rule: "T001",
                msg: format!("unrecognised allowlist line `{line}`"),
            }),
        }
    }
    finish(current.take(), &mut diags);
    (list, diags)
}

// ---------------------------------------------------------------------------
// Workspace walk
// ---------------------------------------------------------------------------

/// Scans the whole workspace under `root` (the directory holding `crates/`,
/// `tests/`, `examples/` and optionally `tidy.toml`) and returns every
/// diagnostic, deterministically sorted by `(path, line, rule)`.
///
/// On top of the per-line rules this applies:
/// - S002 per compilation unit (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`):
///   a unit whose crate contains no `unsafe` must `#![forbid(unsafe_code)]`.
/// - the `tidy.toml` allowlist, with T002 for entries that match nothing.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();

    // Allowlist first: its own errors are diagnostics too.
    let allow_path = root.join("tidy.toml");
    let (allowlist, mut allow_diags) = match fs::read_to_string(&allow_path) {
        Ok(text) => parse_allowlist("tidy.toml", &text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => (Allowlist::default(), Vec::new()),
        Err(e) => return Err(e),
    };
    diags.append(&mut allow_diags);

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    if crates_dir.is_dir() {
        for entry in sorted_entries(&crates_dir)? {
            if entry.join("Cargo.toml").is_file() {
                crate_dirs.push(entry);
            }
        }
    }

    for crate_dir in &crate_dirs {
        let mut crate_files: Vec<(PathBuf, FileKind)> = Vec::new();
        collect_rs(&crate_dir.join("src"), FileKind::Src, &mut crate_files)?;
        collect_rs(
            &crate_dir.join("benches"),
            FileKind::Benches,
            &mut crate_files,
        )?;

        let mut crate_has_unsafe = false;
        let mut stripped_by_path: Vec<(PathBuf, String)> = Vec::new();
        for (file, kind) in &crate_files {
            let source = fs::read_to_string(file)?;
            let rel = rel_label(root, file);
            diags.extend(check_source(&rel, &source, *kind));
            let stripped = strip_source(&source);
            if stripped.lines().any(|l| has_word(l, "unsafe")) {
                crate_has_unsafe = true;
            }
            stripped_by_path.push((file.clone(), stripped));
        }

        // S002: every compilation unit of an unsafe-free crate forbids
        // unsafe at the root, so the guarantee is compiler-enforced from
        // then on rather than re-derived by this scanner.
        if !crate_has_unsafe {
            let mut units: Vec<PathBuf> = Vec::new();
            for candidate in ["src/lib.rs", "src/main.rs"] {
                let p = crate_dir.join(candidate);
                if p.is_file() {
                    units.push(p);
                }
            }
            let bin_dir = crate_dir.join("src/bin");
            if bin_dir.is_dir() {
                for p in sorted_entries(&bin_dir)? {
                    if p.extension().and_then(|e| e.to_str()) == Some("rs") {
                        units.push(p);
                    }
                }
            }
            for unit in units {
                let declared = stripped_by_path
                    .iter()
                    .find(|(p, _)| *p == unit)
                    .is_some_and(|(_, s)| s.contains("#![forbid(unsafe_code)]"));
                if !declared {
                    let crate_name = crate_dir
                        .file_name()
                        .and_then(|n| n.to_str())
                        .unwrap_or("?");
                    diags.push(Diagnostic {
                        path: rel_label(root, &unit),
                        line: 1,
                        rule: "S002",
                        msg: format!(
                            "crate `{crate_name}` contains no unsafe code but this \
                             compilation unit does not declare #![forbid(unsafe_code)]"
                        ),
                    });
                }
            }
        }
    }

    for (dir, kind) in [
        (root.join("tests"), FileKind::TestsDir),
        (root.join("examples"), FileKind::Examples),
    ] {
        let mut files = Vec::new();
        collect_rs(&dir, kind, &mut files)?;
        for (file, kind) in files {
            let source = fs::read_to_string(&file)?;
            diags.extend(check_source(&rel_label(root, &file), &source, kind));
        }
    }

    // Apply the allowlist; entries that suppressed nothing are stale (T002).
    let mut used: BTreeSet<usize> = BTreeSet::new();
    diags.retain(|d| {
        match allowlist
            .entries
            .iter()
            .position(|e| e.rule == d.rule && e.path == d.path)
        {
            Some(i) => {
                used.insert(i);
                false
            }
            None => true,
        }
    });
    for (i, e) in allowlist.entries.iter().enumerate() {
        if !used.contains(&i) {
            diags.push(Diagnostic {
                path: "tidy.toml".to_string(),
                line: e.line,
                rule: "T002",
                msg: format!(
                    "stale allowlist entry: rule {} no longer fires in `{}` — delete it",
                    e.rule, e.path
                ),
            });
        }
    }

    diags.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(diags)
}

/// Walks `dir` recursively, pushing every `.rs` file with `kind`. Skips
/// `fixtures/` (tidy's rule-tripping corpus must trip rules) and `target/`.
fn collect_rs(dir: &Path, kind: FileKind, out: &mut Vec<(PathBuf, FileKind)>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in sorted_entries(dir)? {
        let name = entry.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if entry.is_dir() {
            if name == "fixtures" || name == "target" {
                continue;
            }
            collect_rs(&entry, kind, out)?;
        } else if name.ends_with(".rs") {
            out.push((entry, kind));
        }
    }
    Ok(())
}

/// `read_dir` in sorted order: the walk (and therefore every diagnostic
/// list, golden output and exit path) is independent of directory-entry
/// order — tidy holds itself to its own determinism rules.
fn sorted_entries(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    Ok(entries)
}

fn rel_label(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    // Forward slashes in diagnostics regardless of host separator.
    rel.to_string_lossy().replace('\\', "/")
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(src: &str, kind: FileKind) -> Vec<&'static str> {
        check_source("f.rs", src, kind)
            .into_iter()
            .map(|d| d.rule)
            .collect()
    }

    #[test]
    fn stripper_blanks_comments_and_strings() {
        let s = strip_source("let x = \"HashMap\"; // HashMap\n/* HashMap */ let y = 1;");
        assert!(!s.contains("HashMap"), "{s}");
        assert!(s.contains("let x ="));
        assert!(s.contains("let y = 1;"));
    }

    #[test]
    fn stripper_handles_raw_strings_and_char_literals() {
        let s = strip_source("let a = r#\"Instant\"#; let b = '\"'; let c = \"x\\\"Instant\";");
        assert!(!s.contains("Instant"), "{s}");
        // A lifetime must survive stripping (it is not a char literal).
        let s = strip_source("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(s.contains("fn f<'a>"), "{s}");
        // Nested block comments fully close.
        let s = strip_source("/* outer /* inner */ still comment */ let z = 1;");
        assert!(s.contains("let z = 1;"), "{s}");
    }

    #[test]
    fn d001_fires_on_hash_containers_only() {
        assert_eq!(
            rules("use std::collections::HashMap;", FileKind::Src),
            vec!["D001"]
        );
        assert_eq!(
            rules("let s: HashSet<u32>;", FileKind::TestsDir),
            vec!["D001"]
        );
        assert!(rules("use std::collections::BTreeMap;", FileKind::Src).is_empty());
        // Mentions in docs and strings never fire.
        assert!(rules(
            "// HashMap is forbidden\nlet m = \"HashMap\";",
            FileKind::Src
        )
        .is_empty());
    }

    #[test]
    fn d002_fires_on_wall_clock_but_not_duration() {
        assert_eq!(
            rules("let t = Instant::now();", FileKind::Src),
            vec!["D002"]
        );
        assert_eq!(
            rules("let t = SystemTime::now();", FileKind::Benches),
            vec!["D002"]
        );
        assert!(rules("use std::time::Duration;", FileKind::Src).is_empty());
    }

    #[test]
    fn d003_fires_on_entropy_sources() {
        assert_eq!(
            rules("let mut r = thread_rng();", FileKind::Src),
            vec!["D003"]
        );
        assert_eq!(
            rules(
                "use std::collections::hash_map::RandomState;",
                FileKind::Src
            ),
            vec!["D003"]
        );
        assert_eq!(
            rules("let h = DefaultHasher::new();", FileKind::Src),
            vec!["D003"]
        );
        assert!(rules("let r = SmallRng::seed_from_u64(7);", FileKind::Src).is_empty());
    }

    #[test]
    fn r001_respects_test_and_simcheck_regions_and_justifications() {
        let src = "fn f() { x.unwrap(); }";
        assert_eq!(rules(src, FileKind::Src), vec!["R001"]);
        // Tests-dir files and cfg(test) modules are exempt.
        assert!(rules(src, FileKind::TestsDir).is_empty());
        let in_mod =
            "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\nfn g() { y.unwrap(); }";
        let diags = check_source("f.rs", in_mod, FileKind::Src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 5);
        // Simcheck-gated invariant code is allowed to panic.
        let simcheck = "#[cfg(feature = \"simcheck\")]\nfn check(&self) {\n    panic!(\"bad\");\n}";
        assert!(rules(simcheck, FileKind::Src).is_empty());
        // A justification silences the rule, on the line or just above.
        assert!(rules("x.unwrap(); // INVARIANT: set in new()", FileKind::Src).is_empty());
        assert!(rules(
            "// INVARIANT: the pool is non-empty after init\nx.unwrap();",
            FileKind::Src
        )
        .is_empty());
    }

    #[test]
    fn s001_requires_safety_comment() {
        assert_eq!(rules("unsafe { ptr.read() }", FileKind::Src), vec!["S001"]);
        assert!(rules(
            "// SAFETY: ptr is valid for reads, checked above\nunsafe { ptr.read() }",
            FileKind::Src
        )
        .is_empty());
        // `unsafe_code` (the lint name) is not the `unsafe` keyword.
        assert!(rules("#![forbid(unsafe_code)]", FileKind::Src).is_empty());
    }

    #[test]
    fn c001_flags_narrowing_casts_on_budget_lines_only() {
        assert_eq!(
            rules("let n = budget as usize;", FileKind::Src),
            vec!["C001"]
        );
        assert_eq!(
            rules("let b = footprint_bytes as u32;", FileKind::Src),
            vec!["C001"]
        );
        // Widening and context-free casts pass.
        assert!(rules("let w = x as u64;", FileKind::Src).is_empty());
        assert!(rules("let idx = tag as usize;", FileKind::Src).is_empty());
        // try_from or a CAST justification silences it.
        assert!(rules("let n = usize::try_from(budget)?;", FileKind::Src).is_empty());
        assert!(rules(
            "let n = budget as usize; // CAST: bounded by MAX_CELLS above",
            FileKind::Src
        )
        .is_empty());
        // Test code is exempt.
        assert!(rules("let n = budget as usize;", FileKind::TestsDir).is_empty());
    }

    #[test]
    fn allowlist_parses_and_reports_malformed_entries() {
        let good =
            "# comment\n[[allow]]\nrule = \"D002\"\npath = \"a/b.rs\"\nreason = \"timing\"\n";
        let (list, diags) = parse_allowlist("tidy.toml", good);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(list.entries.len(), 1);
        assert_eq!(list.entries[0].rule, "D002");

        let missing_reason = "[[allow]]\nrule = \"D002\"\npath = \"a.rs\"\n";
        let (list, diags) = parse_allowlist("tidy.toml", missing_reason);
        assert!(list.entries.is_empty());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "T001");

        let garbage = "rule without entry\n";
        let (_, diags) = parse_allowlist("tidy.toml", garbage);
        assert_eq!(diags[0].rule, "T001");
    }

    #[test]
    fn diagnostics_format_is_stable() {
        let d = Diagnostic {
            path: "crates/x/src/lib.rs".to_string(),
            line: 7,
            rule: "D001",
            msg: "m".to_string(),
        };
        assert_eq!(d.to_string(), "crates/x/src/lib.rs:7 [D001] m");
    }
}
