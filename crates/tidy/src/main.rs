//! CLI front end for [`bebop_tidy`]: scan the workspace, print diagnostics,
//! exit nonzero on any violation (the blocking CI contract).
//!
//! ```text
//! bebop-tidy [--root <dir>]
//! ```
//!
//! Without `--root` the workspace root is found by walking up from the
//! current directory to the first ancestor holding a `crates/` directory
//! next to a `Cargo.toml`, so the binary works from any subdirectory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("bebop-tidy: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: bebop-tidy [--root <workspace dir>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("bebop-tidy: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!(
                "bebop-tidy: no workspace root found (no ancestor with crates/ + Cargo.toml); \
                 pass --root"
            );
            return ExitCode::from(2);
        }
    };

    if !root.join("crates").is_dir() {
        eprintln!(
            "bebop-tidy: {} is not a workspace root (no crates/ directory)",
            root.display()
        );
        return ExitCode::from(2);
    }

    match bebop_tidy::check_workspace(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("tidy ok: {} is clean", root.display());
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            eprintln!(
                "tidy: {} error(s); see docs/ARCHITECTURE.md \u{a7} Static analysis for the \
                 rule table and how to justify exceptions",
                diags.len()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bebop-tidy: cannot scan {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
