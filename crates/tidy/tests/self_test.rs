//! End-to-end self-tests for `bebop-tidy`.
//!
//! Three layers: (1) each rule fixture under `fixtures/` trips exactly the
//! diagnostics it documents, with a golden check of the rendered output;
//! (2) the workspace this test runs inside is clean — tidy gates CI, so the
//! gate must hold on the tree that ships it; (3) the installed binary
//! reports the right exit codes (0 clean, 1 violations, 2 usage/IO errors).

use bebop_tidy::{check_source, check_workspace, parse_allowlist, FileKind};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// `(line, rule)` pairs for a fixture checked as production source.
fn trips(name: &str) -> Vec<(usize, &'static str)> {
    check_source("f.rs", &fixture(name), FileKind::Src)
        .iter()
        .map(|d| (d.line, d.rule))
        .collect()
}

/// A scratch directory unique to this test process and label.
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bebop-tidy-selftest-{}-{label}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Writes a minimal crate (`Cargo.toml` + `src/lib.rs`) under `root/crates/`.
fn write_crate(root: &Path, name: &str, lib_rs: &str) {
    let dir = root.join("crates").join(name);
    fs::create_dir_all(dir.join("src")).unwrap();
    fs::write(
        dir.join("Cargo.toml"),
        format!("[package]\nname = \"{name}\"\nversion = \"0.0.0\"\nedition = \"2021\"\n"),
    )
    .unwrap();
    fs::write(dir.join("src/lib.rs"), lib_rs).unwrap();
}

// ---------------------------------------------------------------------------
// Per-rule fixtures
// ---------------------------------------------------------------------------

#[test]
fn d001_fixture_trips_on_hash_containers_only() {
    assert_eq!(
        trips("d001_hash_container.rs"),
        vec![(2, "D001"), (5, "D001")]
    );
}

#[test]
fn d002_fixture_trips_on_clocks_not_durations() {
    assert_eq!(
        trips("d002_wall_clock.rs"),
        vec![(3, "D002"), (7, "D002"), (8, "D002")]
    );
}

#[test]
fn d003_fixture_trips_on_entropy_sources() {
    assert_eq!(
        trips("d003_entropy.rs"),
        vec![(2, "D003"), (4, "D003"), (5, "D003")]
    );
}

#[test]
fn r001_fixture_trips_outside_tests_and_justifications() {
    assert_eq!(
        trips("r001_panic.rs"),
        vec![(3, "R001"), (4, "R001"), (6, "R001")]
    );
}

#[test]
fn s001_fixture_trips_on_undocumented_unsafe() {
    assert_eq!(trips("s001_unsafe.rs"), vec![(3, "S001")]);
}

#[test]
fn c001_fixture_trips_on_unjustified_narrowing_casts() {
    assert_eq!(
        trips("c001_narrowing_cast.rs"),
        vec![(4, "C001"), (5, "C001")]
    );
}

#[test]
fn r001_and_c001_do_not_apply_to_tests_dir_sources() {
    for name in ["r001_panic.rs", "c001_narrowing_cast.rs"] {
        let diags = check_source("t.rs", &fixture(name), FileKind::TestsDir);
        assert!(
            diags.is_empty(),
            "{name} as an integration test must be exempt, got {diags:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Golden rendered output
// ---------------------------------------------------------------------------

#[test]
fn golden_diagnostic_rendering() {
    let mut lines = Vec::new();
    for name in ["d002_wall_clock.rs", "r001_panic.rs", "s001_unsafe.rs"] {
        for d in check_source(name, &fixture(name), FileKind::Src) {
            lines.push(d.to_string());
        }
    }
    let expected = "\
d002_wall_clock.rs:3 [D002] wall-clock time source `Instant` outside an allowlisted timing module; sim-state paths must be deterministic
d002_wall_clock.rs:7 [D002] wall-clock time source `SystemTime` outside an allowlisted timing module; sim-state paths must be deterministic
d002_wall_clock.rs:8 [D002] wall-clock time source `SystemTime` outside an allowlisted timing module; sim-state paths must be deterministic
r001_panic.rs:3 [R001] `.unwrap()` in non-test code; propagate the error or justify the panic with an `// INVARIANT:` comment
r001_panic.rs:4 [R001] `.expect(` in non-test code; propagate the error or justify the panic with an `// INVARIANT:` comment
r001_panic.rs:6 [R001] `panic!` in non-test code; propagate the error or justify the panic with an `// INVARIANT:` comment
s001_unsafe.rs:3 [S001] `unsafe` without a `// SAFETY:` comment on or directly above the line";
    assert_eq!(lines.join("\n"), expected);
}

// ---------------------------------------------------------------------------
// Workspace walk: the real tree, S002, and the allowlist
// ---------------------------------------------------------------------------

#[test]
fn the_workspace_that_ships_tidy_is_clean() {
    let diags = check_workspace(&workspace_root()).expect("walk workspace");
    assert!(
        diags.is_empty(),
        "workspace must be tidy-clean:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn s002_fires_for_an_unsafe_free_crate_without_forbid() {
    let root = scratch("s002");
    let dir = root.join("crates/s002fix");
    fs::create_dir_all(dir.join("src")).unwrap();
    for (from, to) in [("Cargo.toml", "Cargo.toml"), ("src/lib.rs", "src/lib.rs")] {
        fs::copy(
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("fixtures/s002_crate")
                .join(from),
            dir.join(to),
        )
        .unwrap();
    }
    let diags = check_workspace(&root).expect("walk");
    assert_eq!(diags.len(), 1, "exactly one diagnostic, got {diags:?}");
    assert_eq!(diags[0].rule, "S002");
    assert_eq!(diags[0].path, "crates/s002fix/src/lib.rs");
    assert_eq!(diags[0].line, 1);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn allowlist_suppresses_a_matching_diagnostic() {
    let root = scratch("allow-hit");
    write_crate(
        &root,
        "timed",
        "#![forbid(unsafe_code)]\npub fn t() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    let diags = check_workspace(&root).expect("walk");
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, "D002");

    fs::write(
        root.join("tidy.toml"),
        "[[allow]]\nrule = \"D002\"\npath = \"crates/timed/src/lib.rs\"\nreason = \"fixture timing module\"\n",
    )
    .unwrap();
    let diags = check_workspace(&root).expect("walk with allowlist");
    assert!(
        diags.is_empty(),
        "allowlisted D002 must be suppressed, got {diags:?}"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn stale_allowlist_entries_are_reported_as_t002() {
    let root = scratch("allow-stale");
    write_crate(
        &root,
        "clean",
        "#![forbid(unsafe_code)]\npub fn f() -> u32 { 1 }\n",
    );
    fs::write(
        root.join("tidy.toml"),
        "# comment\n[[allow]]\nrule = \"D002\"\npath = \"crates/clean/src/lib.rs\"\nreason = \"nothing here needs this\"\n",
    )
    .unwrap();
    let diags = check_workspace(&root).expect("walk");
    assert_eq!(diags.len(), 1, "got {diags:?}");
    assert_eq!(diags[0].rule, "T002");
    assert_eq!(diags[0].path, "tidy.toml");
    assert_eq!(diags[0].line, 2, "T002 reports the [[allow]] header line");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn malformed_allowlist_entries_are_t001() {
    // Missing reason.
    let (list, diags) =
        parse_allowlist("tidy.toml", "[[allow]]\nrule = \"D002\"\npath = \"x.rs\"\n");
    assert!(list.entries.is_empty());
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, "T001");

    // Unrecognised key.
    let (_, diags) = parse_allowlist(
        "tidy.toml",
        "[[allow]]\nrule = \"D002\"\npath = \"x.rs\"\nreason = \"ok\"\nseverity = \"warn\"\n",
    );
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, "T001");
    assert_eq!(diags[0].line, 5);
}

// ---------------------------------------------------------------------------
// Binary exit codes
// ---------------------------------------------------------------------------

#[test]
fn binary_exits_zero_on_the_clean_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_bebop-tidy"))
        .arg("--root")
        .arg(workspace_root())
        .output()
        .expect("run bebop-tidy");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "expected exit 0, got {:?}; stdout:\n{stdout}",
        out.status.code()
    );
    assert!(stdout.contains("tidy ok"), "stdout:\n{stdout}");
}

#[test]
fn binary_exits_one_on_a_tree_with_violations() {
    let root = scratch("bin-violations");
    write_crate(
        &root,
        "dirty",
        "#![forbid(unsafe_code)]\nuse std::collections::HashMap;\npub fn f() -> HashMap<u8, u8> { HashMap::new() }\n",
    );
    let out = Command::new(env!("CARGO_BIN_EXE_bebop-tidy"))
        .arg("--root")
        .arg(&root)
        .output()
        .expect("run bebop-tidy");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(stdout.contains("[D001]"), "stdout:\n{stdout}");
    assert!(stderr.contains("error(s)"), "stderr:\n{stderr}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn binary_exits_two_on_an_unusable_root() {
    let out = Command::new(env!("CARGO_BIN_EXE_bebop-tidy"))
        .arg("--root")
        .arg("/nonexistent/bebop-tidy-selftest")
        .output()
        .expect("run bebop-tidy");
    assert_eq!(out.status.code(), Some(2));
}
