//! A minimal, deterministic stand-in for the subset of the [`rand`] crate API this
//! workspace uses (`SmallRng`, `Rng::{gen, gen_bool, gen_range}`, `SeedableRng`).
//!
//! The build environment has no network access to crates.io, and the simulator
//! only needs *reproducible* pseudo-randomness — every workload is seeded, and
//! bit-identical traces across runs and machines are a correctness requirement
//! (serial and parallel figure regeneration must agree exactly). A tiny local
//! implementation keeps that guarantee explicit: the generator below is
//! xoshiro256++ seeded through SplitMix64, the same algorithm family `rand`'s
//! `SmallRng` uses on 64-bit targets.
//!
//! [`rand`]: https://crates.io/crates/rand

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator seedable from a `u64` (the only constructor the
/// workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanded with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw 64-bit output source behind [`Rng`].
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from the full 64-bit output
/// (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Maps 64 uniform bits to a uniform `Self`.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> Self {
        // 53 uniform mantissa bits in [0, 1), as rand's Standard distribution.
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

/// Ranges that can be sampled (`rng.gen_range(lo..hi)` / `lo..=hi`).
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching `rand`'s behaviour.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1) as u64;
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return Standard::from_bits(rng.next_u64());
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, usize, i8, i16, i32, i64);

macro_rules! impl_sample_range_signed {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                ((self.start as i128) + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                if span == 0 {
                    return Standard::from_bits(rng.next_u64());
                }
                ((start as i128) + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i8 as u8, i16 as u16, i32 as u32, i64 as u64);

/// The sampling interface, as a blanket extension over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample of `T` (`u64`, `u32`, `f64` in `[0, 1)`, integers, `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let x: f64 = self.gen();
        x < p
    }

    /// A uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++ seeded via SplitMix64
    /// (the algorithm family `rand`'s `SmallRng` uses on 64-bit platforms).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let ratio = hits as f64 / 100_000.0;
        assert!((ratio - 0.25).abs() < 0.01, "p=0.25 off: {ratio}");
        let mut r2 = SmallRng::seed_from_u64(3);
        assert!(!(0..1000).any(|_| r2.gen_bool(0.0)));
        assert!((0..1000).all(|_| r2.gen_bool(1.1)));
    }

    #[test]
    fn ranges_are_inclusive_exclusive_as_written() {
        let mut r = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let a = r.gen_range(16u64..256);
            assert!((16..256).contains(&a));
            let b = r.gen_range(2..=8usize);
            assert!((2..=8).contains(&b));
            let c = r.gen_range(1i64..=4);
            assert!((1..=4).contains(&c));
            let d = r.gen_range(0u8..3);
            assert!(d < 3);
        }
        // Both endpoints of an inclusive range are reachable.
        let mut seen = [false; 7];
        let mut r = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            seen[r.gen_range(2..=8usize) - 2] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut r = SmallRng::seed_from_u64(6);
        let _ = r.gen_range(5u64..5);
    }
}
