//! End-to-end checkpoint/restore tests of the robustness layer.
//!
//! The headline property: a run snapshotted at an *arbitrary* commit point
//! and resumed through [`bebop::run_source_resumable`] finishes with
//! `SimStats` bit-identical to an uninterrupted run — for every
//! [`PredictorKind`], serial and parallel. Alongside it: corrupt, truncated
//! and mismatched checkpoints are rejected-and-discarded with a clean
//! fall-back to a from-zero run, and signal interruption leaves a resumable
//! snapshot behind.

use bebop::{
    configs, par, run_fingerprint, run_source, run_source_resumable, set_shutdown_requested,
    PipelineConfig, PredictorKind, ResumeOptions, RunControl, RunOutcome, SimCheckpoint, UopSource,
    WorkloadSpec,
};
use bebop_trace::TraceBuffer;
use bebop_uarch::{Pipeline, ValuePredictor};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fs;
use std::path::PathBuf;

const TOTAL: u64 = 6_000;

fn all_kinds() -> Vec<PredictorKind> {
    vec![
        PredictorKind::None,
        PredictorKind::Perfect,
        PredictorKind::LastValue,
        PredictorKind::Stride,
        PredictorKind::TwoDeltaStride,
        PredictorKind::Vtage,
        PredictorKind::VtageStrideHybrid,
        PredictorKind::DVtage,
        PredictorKind::BlockDVtage(configs::medium()),
    ]
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "bebop-ckpt-it-{tag}-{}.bbpckpt",
        std::process::id()
    ))
}

/// Snapshots a run of `kind` at `cut` committed µ-ops exactly as the resume
/// driver would, writes the checkpoint to `path`, and returns it.
fn snapshot_at(
    spec: &WorkloadSpec,
    cfg: &PipelineConfig,
    kind: &PredictorKind,
    cut: u64,
    path: &std::path::Path,
) -> SimCheckpoint {
    let mut pipeline = Pipeline::new(cfg.clone());
    let mut predictor = kind.build();
    let mut stream = UopSource::Live(spec).stream();
    let mut stream_pos = 0u64;
    pipeline.run_segment(&mut stream, &mut predictor, cut, &mut stream_pos);
    let ckpt = SimCheckpoint {
        fingerprint: run_fingerprint(&UopSource::Live(spec), cfg, kind, TOTAL),
        committed: pipeline.committed_uops(),
        stream_pos,
        pipeline: pipeline.save_state(),
        predictor: predictor.save_state(),
    };
    ckpt.write_atomic(path).expect("write checkpoint");
    ckpt
}

/// The round-trip check for one predictor kind: save at a seeded-random
/// commit point, resume through the production path, require bit-identical
/// final statistics and checkpoint cleanup.
fn check_roundtrip(kind: &PredictorKind, tag: &str, seed: u64) {
    let spec = WorkloadSpec::named_demo("ckpt-roundtrip");
    let cfg = PipelineConfig::baseline_vp_6_60();
    let reference = run_source(UopSource::Live(&spec), &cfg, kind, TOTAL);

    let cut = SmallRng::seed_from_u64(seed).gen_range(TOTAL / 8..TOTAL - TOTAL / 8);
    let path = tmp_path(&format!("{tag}-{seed:x}-{:x}", cut));
    let ckpt = snapshot_at(&spec, &cfg, kind, cut, &path);
    assert_eq!(ckpt.committed, cut, "run_segment stops exactly at the cut");

    let resumed = run_source_resumable(
        UopSource::Live(&spec),
        &cfg,
        kind,
        TOTAL,
        ResumeOptions {
            checkpoint_path: Some(&path),
            ..Default::default()
        },
    );
    assert_eq!(
        resumed.resumed_from,
        Some(cut),
        "{tag}: must resume from the snapshot, not restart"
    );
    assert_eq!(resumed.rejected_checkpoint, None);
    assert_eq!(
        resumed.outcome,
        RunOutcome::Complete(reference),
        "{tag}: resumed SimStats must be bit-identical to an uninterrupted run"
    );
    assert!(!path.exists(), "{tag}: completed runs discard the snapshot");
}

#[test]
fn every_predictor_kind_resumes_bit_identically_serial() {
    for (i, kind) in all_kinds().iter().enumerate() {
        check_roundtrip(kind, &format!("serial-{i}"), 0x5eed + i as u64);
    }
}

#[test]
fn every_predictor_kind_resumes_bit_identically_parallel() {
    let kinds = all_kinds();
    let checks: Vec<(usize, &PredictorKind)> = kinds.iter().enumerate().collect();
    // The same property under the worker pool: restores racing in parallel
    // threads must not share or corrupt any state.
    par::par_map(&checks, |(i, kind)| {
        check_roundtrip(kind, &format!("par-{i}"), 0xfee1 + *i as u64)
    });
}

/// Phase-sampling interaction: a *slice-bounded* run (the stream behind a
/// sampled measurement window, [`UopSource::ReplaySlice`]) snapshotted in
/// the middle of its slice and resumed through the production path must
/// finish bit-identical to the uninterrupted slice run — checkpointing and
/// sampling compose without either subsystem special-casing the other.
#[test]
fn slice_bounded_resumable_run_restores_mid_slice_bit_identically() {
    let spec = WorkloadSpec::named_demo("ckpt-slice");
    let cfg = PipelineConfig::baseline_vp_6_60();
    let kind = PredictorKind::DVtage;
    let buf = TraceBuffer::record(&spec, 12_000);
    let (start, end) = (4_000usize, 9_000usize);
    let src = || UopSource::replay_slice(&buf, start, end).expect("valid slice");
    let budget: u64 = src().stream().filter(|u| !u.wrong_path).count() as u64;
    assert!(budget > 16, "slice must hold a meaningful run");
    let reference = run_source(src(), &cfg, &kind, budget);

    // Snapshot mid-slice exactly as the resume driver would.
    let cut = budget / 2;
    let path = tmp_path("slice");
    let mut pipeline = Pipeline::new(cfg.clone());
    let mut predictor = kind.build();
    let mut stream = src().stream();
    let mut stream_pos = 0u64;
    pipeline.run_segment(&mut stream, &mut predictor, cut, &mut stream_pos);
    let ckpt = SimCheckpoint {
        fingerprint: run_fingerprint(&src(), &cfg, &kind, budget),
        committed: pipeline.committed_uops(),
        stream_pos,
        pipeline: pipeline.save_state(),
        predictor: predictor.save_state(),
    };
    ckpt.write_atomic(&path).expect("write checkpoint");
    assert_eq!(ckpt.committed, cut, "snapshot lands exactly mid-slice");

    let resumed = run_source_resumable(
        src(),
        &cfg,
        &kind,
        budget,
        ResumeOptions {
            checkpoint_path: Some(&path),
            ..Default::default()
        },
    );
    assert_eq!(
        resumed.resumed_from,
        Some(cut),
        "must resume from the mid-slice snapshot, not restart"
    );
    assert_eq!(resumed.rejected_checkpoint, None);
    assert_eq!(
        resumed.outcome,
        RunOutcome::Complete(reference),
        "resumed slice-bounded SimStats must be bit-identical"
    );
    assert!(!path.exists(), "completed runs discard the snapshot");
}

#[test]
fn corrupt_truncated_and_mismatched_checkpoints_fall_back_to_zero() {
    let spec = WorkloadSpec::named_demo("ckpt-reject");
    let cfg = PipelineConfig::baseline_vp_6_60();
    let kind = PredictorKind::DVtage;
    let reference = run_source(UopSource::Live(&spec), &cfg, &kind, TOTAL);
    let path = tmp_path("reject");

    type Mutation = Box<dyn Fn(Vec<u8>) -> Vec<u8>>;
    let mutations: Vec<(&str, Mutation)> = vec![
        (
            "flipped byte",
            Box::new(|mut b: Vec<u8>| {
                let at = b.len() / 2;
                b[at] ^= 0x40;
                b
            }),
        ),
        (
            "truncated file",
            Box::new(|b: Vec<u8>| {
                let keep = b.len() * 2 / 3;
                b[..keep].to_vec()
            }),
        ),
        (
            "wrong magic",
            Box::new(|mut b: Vec<u8>| {
                b[0] = b'X';
                b
            }),
        ),
    ];
    for (what, mutate) in mutations {
        snapshot_at(&spec, &cfg, &kind, TOTAL / 2, &path);
        let bytes = fs::read(&path).expect("checkpoint bytes");
        fs::write(&path, mutate(bytes)).expect("write mutated checkpoint");

        let run = run_source_resumable(
            UopSource::Live(&spec),
            &cfg,
            &kind,
            TOTAL,
            ResumeOptions {
                checkpoint_path: Some(&path),
                ..Default::default()
            },
        );
        assert_eq!(run.resumed_from, None, "{what}: must not resume");
        assert!(
            run.rejected_checkpoint.is_some(),
            "{what}: the rejection must be reported"
        );
        assert_eq!(
            run.outcome,
            RunOutcome::Complete(reference),
            "{what}: the from-zero fall-back must still be bit-identical"
        );
        assert!(!path.exists(), "{what}: the bad file must be discarded");
    }

    // A checkpoint from a *different* configuration (here: another µ-op
    // budget, which changes the fingerprint) is rejected the same way.
    let mut other = snapshot_at(&spec, &cfg, &kind, TOTAL / 2, &path);
    other.fingerprint ^= 1;
    other.write_atomic(&path).expect("write foreign checkpoint");
    let run = run_source_resumable(
        UopSource::Live(&spec),
        &cfg,
        &kind,
        TOTAL,
        ResumeOptions {
            checkpoint_path: Some(&path),
            ..Default::default()
        },
    );
    assert_eq!(run.resumed_from, None);
    assert!(run
        .rejected_checkpoint
        .as_deref()
        .is_some_and(|r| r.contains("different configuration")));
    assert_eq!(run.outcome, RunOutcome::Complete(reference));
    assert!(!path.exists());
}

#[test]
fn cancelled_run_writes_a_final_checkpoint_and_resumes_bit_identically() {
    let spec = WorkloadSpec::named_demo("ckpt-cancel");
    let cfg = PipelineConfig::baseline_vp_6_60();
    let kind = PredictorKind::DVtage;
    // Under simcheck every committed µ-op pays for full invariant scans, so
    // a smaller budget keeps the sanitizer CI job inside its time box while
    // still crossing several checkpoint intervals before the cancel lands.
    const BUDGET: u64 = if cfg!(feature = "simcheck") {
        60_000
    } else {
        200_000
    };
    let reference = run_source(UopSource::Live(&spec), &cfg, &kind, BUDGET);
    let path = tmp_path("cancel");
    SimCheckpoint::discard(&path);

    // A supervisor cancels once the run is demonstrably mid-flight; the
    // heartbeat makes "mid-flight" observable without guessing at timing.
    let control = RunControl::new();
    let interrupted = std::thread::scope(|s| {
        s.spawn(|| {
            while control.committed() < BUDGET / 4 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            control.request_cancel();
        });
        run_source_resumable(
            UopSource::Live(&spec),
            &cfg,
            &kind,
            BUDGET,
            ResumeOptions {
                checkpoint_path: Some(&path),
                checkpoint_every: 10_000,
                control: Some(&control),
                react_to_signals: false,
            },
        )
    });
    let committed = match interrupted.outcome {
        RunOutcome::Cancelled { committed } => committed,
        other => panic!("expected cancellation, got {other:?}"),
    };
    assert!(
        (BUDGET / 4..BUDGET).contains(&committed),
        "cancellation must land mid-run (committed {committed})"
    );
    assert!(path.exists(), "a cancelled run leaves its final checkpoint");

    let resumed = run_source_resumable(
        UopSource::Live(&spec),
        &cfg,
        &kind,
        BUDGET,
        ResumeOptions {
            checkpoint_path: Some(&path),
            ..Default::default()
        },
    );
    assert_eq!(resumed.resumed_from, Some(committed));
    assert_eq!(resumed.outcome, RunOutcome::Complete(reference));
    assert!(!path.exists());
}

#[test]
fn signal_interruption_leaves_a_resumable_checkpoint() {
    let spec = WorkloadSpec::named_demo("ckpt-signal");
    let cfg = PipelineConfig::baseline_vp_6_60();
    let kind = PredictorKind::LastValue;
    let reference = run_source(UopSource::Live(&spec), &cfg, &kind, TOTAL);
    let path = tmp_path("signal");
    SimCheckpoint::discard(&path);

    // The flag is what the SIGINT/SIGTERM handlers set; driving it directly
    // keeps the test in-process and signal-free.
    set_shutdown_requested(true);
    let interrupted = run_source_resumable(
        UopSource::Live(&spec),
        &cfg,
        &kind,
        TOTAL,
        ResumeOptions {
            checkpoint_path: Some(&path),
            react_to_signals: true,
            ..Default::default()
        },
    );
    set_shutdown_requested(false);
    assert!(matches!(
        interrupted.outcome,
        RunOutcome::Interrupted { .. }
    ));
    assert!(path.exists(), "interruption must leave a checkpoint behind");

    let resumed = run_source_resumable(
        UopSource::Live(&spec),
        &cfg,
        &kind,
        TOTAL,
        ResumeOptions {
            checkpoint_path: Some(&path),
            ..Default::default()
        },
    );
    assert!(resumed.resumed_from.is_some());
    assert_eq!(resumed.outcome, RunOutcome::Complete(reference));
    assert!(!path.exists());
}
