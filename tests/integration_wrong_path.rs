//! Wrong-path mode suite.
//!
//! Two families of guarantees:
//!
//! 1. **Replay fidelity for wrong-path traces**: a wrong-path-enabled
//!    workload must simulate bit-identically from the live generator, from a
//!    [`TraceBuffer`] replay, and from a trace-store round trip — for every
//!    built-in predictor kind, under the strictest (polluting) wrong-path
//!    pipeline configuration. This is what lets the `--wrong-path` experiment
//!    use the shared-trace harness at all.
//! 2. **Wrong-path-off regression**: with the mode off, the trace stream and
//!    the simulation results are byte-identical to the pre-wrong-path
//!    baseline, asserted against golden values recorded on `main` before the
//!    mode existed.

use bebop::{
    configs, run_source, PipelineConfig, PredictorKind, TraceBuffer, TraceStore, UopSource,
    WorkloadSpec,
};
use bebop_trace::{decode_trace, encode_trace, TraceGenerator};

const UOPS: u64 = 20_000;

fn all_kinds() -> Vec<PredictorKind> {
    vec![
        PredictorKind::None,
        PredictorKind::Perfect,
        PredictorKind::LastValue,
        PredictorKind::Stride,
        PredictorKind::TwoDeltaStride,
        PredictorKind::Vtage,
        PredictorKind::VtageStrideHybrid,
        PredictorKind::DVtage,
        PredictorKind::BlockDVtage(configs::medium()),
    ]
}

fn wp_spec() -> WorkloadSpec {
    let mut spec = WorkloadSpec::new("wp-integration", 77).with_wrong_path(8);
    // Enough mispredictions that bursts are actually simulated.
    spec.branches.random_frac = 0.3;
    spec
}

/// The most behaviour-rich configuration: wrong-path execution with
/// polluting predictor updates.
fn wp_pipeline() -> PipelineConfig {
    PipelineConfig::baseline_vp_6_60().with_wrong_path(true)
}

#[test]
fn wrong_path_replay_is_bit_identical_for_every_predictor() {
    let spec = wp_spec();
    let buf = TraceBuffer::record(&spec, UOPS);
    assert_eq!(buf.committed_len() as u64, UOPS);
    assert!(buf.wrong_path_len() > 0, "bursts must be recorded");

    // Store round trip through the serialised byte format.
    let decoded = decode_trace(&encode_trace(&spec, &buf)).expect("round trip");
    assert_eq!(decoded.buffer.wrong_path_len(), buf.wrong_path_len());

    for kind in all_kinds() {
        let live = run_source(UopSource::Live(&spec), &wp_pipeline(), &kind, UOPS);
        let replayed = run_source(UopSource::Replay(&buf), &wp_pipeline(), &kind, UOPS);
        let stored = run_source(
            UopSource::Replay(&decoded.buffer),
            &wp_pipeline(),
            &kind,
            UOPS,
        );
        assert_eq!(live, replayed, "{} diverged under replay", kind.label());
        assert_eq!(
            live,
            stored,
            "{} diverged through the store format",
            kind.label()
        );
        assert_eq!(live.uops, UOPS, "{}: budget counts committed", kind.label());
        assert!(
            live.wrong_path.fetched > 0,
            "{}: wrong path must be simulated",
            kind.label()
        );
    }
}

#[test]
fn wrong_path_store_round_trips_through_a_directory_store() {
    let dir = std::env::temp_dir().join(format!("bebop-wp-int-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = TraceStore::open(&dir).expect("open");
    let spec = wp_spec();
    let (cold, was_hit) = store.load_or_record(&spec, UOPS);
    assert!(!was_hit);
    let warm = store.load(&spec, UOPS).expect("warm hit");
    for kind in [
        PredictorKind::DVtage,
        PredictorKind::BlockDVtage(configs::medium()),
    ] {
        let a = run_source(UopSource::Replay(&cold), &wp_pipeline(), &kind, UOPS);
        let b = run_source(UopSource::Replay(&warm), &wp_pipeline(), &kind, UOPS);
        assert_eq!(a, b, "{} diverged through the store", kind.label());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pollution_policies_differ_only_through_the_predictor() {
    // Clean vs polluted over the identical trace: the committed instruction
    // stream is the same, predictor outcomes differ.
    let spec = wp_spec();
    let buf = TraceBuffer::record(&spec, UOPS);
    let base = PipelineConfig::baseline_vp_6_60();
    let clean = run_source(
        UopSource::Replay(&buf),
        &base.clone().with_wrong_path(false),
        &PredictorKind::DVtage,
        UOPS,
    );
    let polluted = run_source(
        UopSource::Replay(&buf),
        &base.with_wrong_path(true),
        &PredictorKind::DVtage,
        UOPS,
    );
    assert_eq!(clean.uops, polluted.uops);
    assert_eq!(clean.insts, polluted.insts);
    assert_eq!(clean.wrong_path.fetched, polluted.wrong_path.fetched);
    assert_eq!(clean.wrong_path.vp_trains, 0);
    assert!(polluted.wrong_path.vp_trains > 0);
    // Pollution must actually change predictor behaviour on this trace
    // (fewer/different predictions, different correctness — any visible
    // difference qualifies; equality would mean the knob is dead).
    assert_ne!(clean.vp, polluted.vp, "pollution had no observable effect");
}

// ---------------------------------------------------------------------------
// Wrong-path-off regression against pre-mode golden values.
// ---------------------------------------------------------------------------

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A stable fingerprint of the first 50 000 µ-ops of a stream, covering every
/// field the pipeline consumes.
fn stream_hash(spec: &WorkloadSpec) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for u in TraceGenerator::new(spec).take(50_000) {
        h = fnv(h, &u.seq.to_le_bytes());
        h = fnv(h, &u.pc.to_le_bytes());
        h = fnv(h, &u.value.to_le_bytes());
        h = fnv(
            h,
            &[
                u.uop_idx,
                u.inst_num_uops,
                u.inst_len,
                u8::from(u.wrong_path),
            ],
        );
        if let Some(m) = u.mem {
            h = fnv(h, &m.addr.to_le_bytes());
        }
        if let Some(b) = u.branch {
            h = fnv(h, &[b.taken as u8]);
            h = fnv(h, &b.target.to_le_bytes());
        }
    }
    h
}

#[test]
fn default_stream_is_byte_identical_to_the_pre_wrong_path_baseline() {
    // Golden value recorded on `main` immediately before the wrong-path mode
    // was introduced (same hash function, `wrong_path` byte folded in as 0 —
    // the pre-mode hash had no such field, so a constant 0 byte preserves
    // equality only if no default-spec µ-op is ever marked wrong-path).
    let spec = WorkloadSpec::named_demo("golden");
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for u in TraceGenerator::new(&spec).take(50_000) {
        assert!(
            !u.wrong_path,
            "default specs must not emit wrong-path µ-ops"
        );
        h = fnv(h, &u.seq.to_le_bytes());
        h = fnv(h, &u.pc.to_le_bytes());
        h = fnv(h, &u.value.to_le_bytes());
        h = fnv(h, &[u.uop_idx, u.inst_num_uops, u.inst_len]);
        if let Some(m) = u.mem {
            h = fnv(h, &m.addr.to_le_bytes());
        }
        if let Some(b) = u.branch {
            h = fnv(h, &[b.taken as u8]);
            h = fnv(h, &b.target.to_le_bytes());
        }
    }
    assert_eq!(
        h, 0x56e8_69a2_80fb_8b60,
        "the default µ-op stream changed — figure outputs will not match main"
    );
}

#[test]
fn default_simulation_matches_the_pre_wrong_path_baseline() {
    // Golden SimStats recorded on `main` immediately before the wrong-path
    // mode was introduced: 429.mcf, Baseline_VP_6_60, D-VTAGE, 30K µ-ops.
    let spec = bebop::spec_benchmark("429.mcf");
    let stats = bebop::run_one(
        &spec,
        &PipelineConfig::baseline_vp_6_60(),
        &PredictorKind::DVtage,
        30_000,
    );
    assert_eq!(stats.cycles, 293_531, "cycle count changed vs main");
    assert_eq!(stats.branch_flushes, 372);
    assert_eq!(stats.vp_flushes, 0);
    assert_eq!(
        (
            stats.vp.eligible,
            stats.vp.predicted,
            stats.vp.correct,
            stats.vp.incorrect,
            stats.vp.free_load_immediates
        ),
        (20_400, 147, 147, 0, 1_597),
        "value-prediction statistics changed vs main"
    );
    // And the wrong-path counters of a mode-off run are identically zero.
    assert_eq!(stats.wrong_path, Default::default());
}

#[test]
fn wrong_path_off_stream_equals_enabled_streams_correct_path() {
    let plain = WorkloadSpec::new("wp-off-eq", 13);
    let wp = plain.clone().with_wrong_path(8);
    let a: Vec<_> = TraceGenerator::new(&plain).take(25_000).collect();
    let b: Vec<_> = TraceGenerator::new(&wp)
        .filter(|u| !u.wrong_path)
        .take(25_000)
        .collect();
    for (x, y) in a.iter().zip(&b) {
        let mut y2 = *y;
        y2.seq = x.seq;
        assert_eq!(*x, y2);
    }
    // Hash sanity for the wrong-path stream itself: deterministic per seed.
    assert_eq!(stream_hash(&wp), stream_hash(&wp.clone()));
}
