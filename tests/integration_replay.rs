//! Replay-fidelity suite: simulating from a recorded [`TraceBuffer`] must be
//! indistinguishable from simulating the live [`TraceGenerator`] stream.
//!
//! The figure harness leans on this equivalence — every config sweep replays
//! shared recordings instead of regenerating workloads — so it is asserted at
//! the strongest level available: bit-identical `SimStats`, for every built-in
//! predictor kind, on both the serial path and the parallel fan-out (where all
//! worker threads replay one shared buffer concurrently).

use bebop::{
    configs, par, run_source, PipelineConfig, PredictorKind, SimStats, TraceBuffer, UopSource,
    WorkloadSpec,
};

const UOPS: u64 = 30_000;

/// Every built-in predictor kind, including a block-based BeBoP configuration
/// per recovery-relevant storage point.
fn all_kinds() -> Vec<PredictorKind> {
    vec![
        PredictorKind::None,
        PredictorKind::Perfect,
        PredictorKind::LastValue,
        PredictorKind::Stride,
        PredictorKind::TwoDeltaStride,
        PredictorKind::Vtage,
        PredictorKind::VtageStrideHybrid,
        PredictorKind::DVtage,
        PredictorKind::BlockDVtage(configs::small_4p()),
        PredictorKind::BlockDVtage(configs::medium()),
        PredictorKind::BlockDVtage(configs::optimistic_6p()),
    ]
}

fn specs() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::named_demo("replay-demo"),
        WorkloadSpec::new("replay-mixed", 42),
    ]
}

#[test]
fn replayed_stats_are_bit_identical_for_every_predictor_kind_serial() {
    par::set_threads(1);
    for spec in specs() {
        let buf = TraceBuffer::record(&spec, UOPS);
        for kind in all_kinds() {
            let pipeline = PipelineConfig::eole_4_60();
            let live = run_source(UopSource::Live(&spec), &pipeline, &kind, UOPS);
            let replayed = run_source(UopSource::Replay(&buf), &pipeline, &kind, UOPS);
            assert_eq!(
                live,
                replayed,
                "{} diverged under serial replay on {}",
                kind.label(),
                spec.name
            );
        }
    }
    par::set_threads(0);
}

#[test]
fn replayed_stats_are_bit_identical_for_every_predictor_kind_parallel() {
    // All predictor kinds replay ONE shared buffer from concurrent worker
    // threads; every result must still match its serial live-generation twin.
    let spec = WorkloadSpec::named_demo("replay-par");
    let buf = TraceBuffer::record(&spec, UOPS);
    let kinds = all_kinds();

    par::set_threads(1);
    let live: Vec<SimStats> = kinds
        .iter()
        .map(|kind| {
            run_source(
                UopSource::Live(&spec),
                &PipelineConfig::baseline_vp_6_60(),
                kind,
                UOPS,
            )
        })
        .collect();

    // Force real worker threads even on a single-core machine.
    par::set_threads(4);
    let replayed: Vec<SimStats> = par::par_map(&kinds, |kind| {
        run_source(
            UopSource::Replay(&buf),
            &PipelineConfig::baseline_vp_6_60(),
            kind,
            UOPS,
        )
    });
    par::set_threads(0);

    for ((kind, l), r) in kinds.iter().zip(&live).zip(&replayed) {
        assert_eq!(
            l,
            r,
            "{} diverged under parallel shared-buffer replay",
            kind.label()
        );
    }
}

#[test]
fn replay_is_prefix_stable() {
    // A recording longer than the simulation budget must still match: the
    // pipeline takes its µ-op budget off the front of either stream.
    let spec = WorkloadSpec::new("replay-prefix", 7);
    let buf = TraceBuffer::record(&spec, UOPS * 2);
    let kind = PredictorKind::BlockDVtage(configs::medium());
    let live = run_source(
        UopSource::Live(&spec),
        &PipelineConfig::eole_4_60(),
        &kind,
        UOPS,
    );
    let replayed = run_source(
        UopSource::Replay(&buf),
        &PipelineConfig::eole_4_60(),
        &kind,
        UOPS,
    );
    assert_eq!(live, replayed);
}
