//! Property-based tests on the core data structures and cross-crate invariants.
//!
//! The environment is offline, so instead of `proptest` these use a small
//! seeded-case harness: each property is checked against a few hundred
//! deterministic pseudo-random inputs (failures are reproducible by case index).

use bebop::{
    BlockDVtageConfig, FifoUpdateQueue, MixSpec, ShardedTable, SpecWindowSize, SpeculativeWindow,
    MAX_NPRED,
};
use bebop_bench::sampling::{cluster_slices, workload_seed};
use bebop_isa::{byte_index_in_block, fetch_block_pc, FetchBlockLayout};
use bebop_trace::{profile_slices, SliceBbv, TraceBuffer, TraceGenerator, WorkloadSpec};
use bebop_uarch::{gmean, Lane, LanePool, OccupancyRing, SlotPool, MAX_DENSE_SPAN, NUM_POOL_LANES};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 200;

fn rng(case: u64) -> SmallRng {
    SmallRng::seed_from_u64(0x9e37_79b9 ^ case)
}

fn slot_values(v: u64) -> [Option<u64>; MAX_NPRED] {
    let mut vals = [None; MAX_NPRED];
    vals[0] = Some(v);
    vals
}

/// Fetch-block arithmetic: the block PC is aligned, contains the PC, and the
/// byte index is the offset within the block.
#[test]
fn prop_fetch_block_arithmetic() {
    for case in 0..CASES {
        let mut r = rng(case);
        let pc: u64 = r.gen();
        let shift = r.gen_range(3u32..8);
        let block_bytes = 1u64 << shift;
        let block = fetch_block_pc(pc, block_bytes);
        let byte = byte_index_in_block(pc, block_bytes);
        assert_eq!(block % block_bytes, 0);
        assert!(pc >= block && pc < block + block_bytes);
        assert_eq!(block + u64::from(byte), pc, "case {case}");
    }
}

/// Block layouts never place an instruction past the end of the block and keep
/// boundaries strictly increasing.
#[test]
fn prop_fetch_block_layout() {
    for case in 0..CASES {
        let mut r = rng(case);
        let n = r.gen_range(1usize..10);
        let lengths: Vec<u8> = (0..n).map(|_| r.gen_range(1u8..=8)).collect();
        let layout = FetchBlockLayout::from_lengths(16, &lengths);
        let bounds = layout.boundaries();
        for w in bounds.windows(2) {
            assert!(w[1] > w[0], "case {case}");
        }
        for &b in bounds {
            assert!(u64::from(b) < 16, "case {case}");
        }
    }
}

/// The speculative window always returns the most recent matching entry, and a
/// squash removes exactly the entries younger than the flush point.
#[test]
fn prop_spec_window_most_recent_and_squash() {
    for case in 0..CASES {
        let mut r = rng(case);
        let n = r.gen_range(1usize..200);
        let blocks: Vec<u64> = (0..n).map(|_| r.gen_range(0u64..8)).collect();
        let capacity = r.gen_range(1usize..64);
        let flush_at = r.gen_range(0usize..200);

        let mut w = SpeculativeWindow::new(Some(capacity), 15);
        for (seq, b) in blocks.iter().enumerate() {
            w.push(b * 16, seq as u64, slot_values(seq as u64));
        }
        // Most recent matching entry wins.
        for b in 0u64..8 {
            if let Some(e) = w.lookup(b * 16) {
                let expected = blocks
                    .iter()
                    .enumerate()
                    .rev()
                    .find(|(seq, &blk)| blk == b && *seq >= blocks.len().saturating_sub(capacity))
                    .map(|(seq, _)| seq as u64);
                assert_eq!(Some(e.seq), expected, "case {case}");
            }
        }
        // Squash drops strictly younger entries only.
        let flush_seq = flush_at.min(blocks.len()) as u64;
        w.squash(flush_seq);
        for b in 0u64..8 {
            if let Some(e) = w.lookup(b * 16) {
                assert!(e.seq <= flush_seq, "case {case}");
            }
        }
    }
}

/// The FIFO update queue preserves order and rollback never leaves younger
/// entries behind.
#[test]
fn prop_fifo_order_and_rollback() {
    for case in 0..CASES {
        let mut r = rng(case);
        let n = r.gen_range(1usize..50);
        let seqs: Vec<u64> = (0..n).map(|_| r.gen_range(1u64..50)).collect();
        let flush = r.gen_range(0u64..2000);

        let mut q = FifoUpdateQueue::new();
        let mut acc = 0u64;
        let mut pushed = Vec::new();
        for s in seqs {
            acc += s;
            q.push(acc, acc);
            pushed.push(acc);
        }
        q.squash(flush);
        let remaining: Vec<u64> = std::iter::from_fn(|| q.pop_front().map(|(s, _)| s)).collect();
        let expected: Vec<u64> = pushed.into_iter().filter(|&s| s <= flush).collect();
        assert_eq!(remaining, expected, "case {case}");
    }
}

/// Slot pools never exceed their per-cycle width and never go backwards.
#[test]
fn prop_slot_pool_width() {
    for case in 0..CASES {
        let mut r = rng(case);
        let width = r.gen_range(1u16..8);
        let n = r.gen_range(1usize..200);
        let mut pool = SlotPool::new(width);
        let mut per_cycle = std::collections::BTreeMap::new();
        for _ in 0..n {
            let t = r.gen_range(0u64..100);
            let c = pool.allocate(t);
            assert!(c >= t, "case {case}");
            let count = per_cycle.entry(c).or_insert(0u16);
            *count += 1;
            assert!(*count <= width, "case {case}");
        }
    }
}

/// The unified generation-counted `LanePool` is allocation-for-allocation
/// identical to a bank of independent per-class `SlotPool`s across arbitrary
/// width/request/prune sequences — the differential guarantee the pipeline's
/// structure-of-arrays refactor rests on, in the same scalar-reference style
/// as the `slot_simd` equivalence tests. The request stream mixes near
/// cycles, far-future spikes (exercising the sparse overflow and its
/// prune-time migration back into the dense window), shared prunes and
/// per-lane horizon prunes; every case also snapshots the lane pool mid-way
/// and checks the restored copy stays in lockstep.
#[test]
fn prop_lane_pool_matches_slot_pool_bank() {
    for case in 0..CASES {
        let mut r = rng(case);
        let widths: [u16; NUM_POOL_LANES] = std::array::from_fn(|_| r.gen_range(1u16..9));
        let mut pool = LanePool::new(widths);
        let mut bank: Vec<SlotPool> = widths.iter().map(|&w| SlotPool::new(w)).collect();
        let n = r.gen_range(1usize..300);
        let mut horizon = 0u64;
        let mut restored: Option<LanePool> = None;
        for step in 0..n {
            let lane = Lane::ALL[r.gen_range(0usize..NUM_POOL_LANES)];
            // Mostly near-window requests, occasionally a far-future spike:
            // some just past the dense span (exercising the sparse overflow
            // and its prune-time migration back into the dense window), some
            // many spans out (the unbounded-growth bug's trigger — the old
            // pool resized its deque out to the requested cycle).
            let req = if r.gen_range(0u32..20) == 0 {
                horizon + MAX_DENSE_SPAN * r.gen_range(1u64..8) + r.gen_range(0u64..1000)
            } else {
                horizon + r.gen_range(0u64..200)
            };
            let got = pool.allocate(lane, req);
            let want = bank[lane as usize].allocate(req);
            assert_eq!(got, want, "case {case} step {step} lane {}", lane.name());
            if let Some(copy) = restored.as_mut() {
                assert_eq!(
                    copy.allocate(lane, req),
                    want,
                    "case {case} step {step} restored"
                );
            }
            match r.gen_range(0u32..12) {
                0 => {
                    // Shared prune: every lane's horizon advances together.
                    horizon += r.gen_range(0u64..50);
                    pool.prune_below(horizon);
                    if let Some(copy) = restored.as_mut() {
                        copy.prune_below(horizon);
                    }
                    for p in bank.iter_mut() {
                        p.prune_below(horizon);
                    }
                }
                1 => {
                    // Per-lane horizon (the commit / execution-lane trail).
                    let l = Lane::ALL[r.gen_range(0usize..NUM_POOL_LANES)];
                    let h = horizon + r.gen_range(0u64..3000);
                    pool.prune_lane_below(l, h);
                    if let Some(copy) = restored.as_mut() {
                        copy.prune_lane_below(l, h);
                    }
                    bank[l as usize].prune_below(h);
                }
                2 if restored.is_none() => {
                    // Snapshot mid-sequence; the restored pool must continue
                    // in lockstep (window shape, horizons and generation all
                    // round-trip).
                    let mut w = bebop_isa::StateWriter::new();
                    pool.save_state(&mut w);
                    let bytes = w.finish();
                    let mut copy = LanePool::new(widths);
                    copy.restore_state(&mut bebop_isa::StateReader::new(&bytes))
                        .expect("round-trip of a live pool must restore");
                    assert_eq!(copy.generation(), pool.generation(), "case {case}");
                    restored = Some(copy);
                }
                _ => {}
            }
        }
        // Regression lock for the unbounded-growth bug: a far-future request
        // used to resize the dense deque out to the requested cycle — the
        // multi-span spikes above would have grown the window to several
        // times MAX_DENSE_SPAN. Dense storage may legitimately materialise up
        // to the span bound (prune-time migration of a just-past-the-window
        // entry), but never beyond it; everything further is sparse, and the
        // sequence holds at most one far entry per step.
        let bound = MAX_DENSE_SPAN + n as u64;
        assert!(
            (pool.tracked_cycles() as u64) <= bound,
            "case {case}: lane pool window grew past the dense bound ({})",
            pool.tracked_cycles()
        );
        for (li, p) in bank.iter().enumerate() {
            assert!(
                (p.tracked_cycles() as u64) <= bound,
                "case {case}: slot pool {li} window grew past the dense bound ({})",
                p.tracked_cycles()
            );
        }
    }
}

/// A group allocation on one lane is exactly as many successive scalar
/// allocations, whatever residual usage the target cycle already carries.
#[test]
fn prop_lane_pool_group_allocation_is_exact() {
    for case in 0..CASES {
        let mut r = rng(case);
        let widths: [u16; NUM_POOL_LANES] = std::array::from_fn(|_| r.gen_range(1u16..9));
        let mut grouped = LanePool::new(widths);
        let mut scalar = LanePool::new(widths);
        let mut cycle = 0u64;
        for step in 0..r.gen_range(1usize..60) {
            let lane = Lane::ALL[r.gen_range(0usize..NUM_POOL_LANES)];
            cycle += r.gen_range(0u64..4);
            let k = r.gen_range(1usize..9);
            let mut out = vec![0u64; k];
            grouped.allocate_group(lane, cycle, &mut out);
            for (j, &got) in out.iter().enumerate() {
                let want = scalar.allocate(lane, cycle);
                assert_eq!(got, want, "case {case} step {step} slot {j}");
            }
        }
    }
}

/// The batched occupancy-ring floor gather (`release_floor_after(k)` against
/// the pre-group state) equals the scalar interleaved constrain/push
/// sequence for any in-group push count below the capacity.
#[test]
fn prop_occupancy_ring_floor_gather() {
    for case in 0..CASES {
        let mut r = rng(case);
        let capacity = r.gen_range(1usize..16);
        let mut live = OccupancyRing::new(capacity);
        let mut batched = OccupancyRing::new(capacity);
        let mut release = 0u64;
        for _ in 0..r.gen_range(1usize..30) {
            let group_len = r.gen_range(1usize..=capacity);
            let group: Vec<u64> = (0..group_len)
                .map(|_| {
                    release += r.gen_range(1u64..20);
                    release
                })
                .collect();
            for (k, &rel) in group.iter().enumerate() {
                assert_eq!(
                    batched.release_floor_after(k),
                    live.constrain(0),
                    "case {case} position {k}"
                );
                live.push(rel);
            }
            batched.push_group(&group);
        }
    }
}

/// Occupancy rings never allow more in-flight entries than their capacity:
/// the constrained allocation cycle is at or after the release of the entry
/// `capacity` positions earlier.
#[test]
fn prop_occupancy_ring() {
    for case in 0..CASES {
        let mut r = rng(case);
        let capacity = r.gen_range(1usize..16);
        let n = r.gen_range(1usize..100);
        let releases: Vec<u64> = (0..n).map(|_| r.gen_range(1u64..1000)).collect();
        let mut ring = OccupancyRing::new(capacity);
        let mut history: Vec<u64> = Vec::new();
        for (i, rel) in releases.iter().enumerate() {
            let constrained = ring.constrain(0);
            if i >= capacity {
                assert!(constrained >= history[i - capacity], "case {case}");
            }
            let release = constrained + rel;
            ring.push(release);
            history.push(release);
        }
    }
}

/// Storage accounting is monotone in every size parameter.
#[test]
fn prop_storage_monotone() {
    for case in 0..CASES {
        let mut r = rng(case);
        let base = r.gen_range(64usize..1024);
        let tagged = r.gen_range(64usize..512);
        let npred = r.gen_range(1usize..MAX_NPRED);
        let stride_bits = [8u32, 16, 32, 64][r.gen_range(0usize..4)];
        let cfg = BlockDVtageConfig {
            npred,
            base_entries: base,
            tagged_entries: tagged,
            stride_bits,
            spec_window: SpecWindowSize::Entries(32),
            ..BlockDVtageConfig::default()
        };
        let bigger_base = BlockDVtageConfig {
            base_entries: base * 2,
            ..cfg.clone()
        };
        let bigger_tagged = BlockDVtageConfig {
            tagged_entries: tagged * 2,
            ..cfg.clone()
        };
        let more_preds = BlockDVtageConfig {
            npred: npred + 1,
            ..cfg.clone()
        };
        assert!(
            bigger_base.storage_bits() > cfg.storage_bits(),
            "case {case}"
        );
        assert!(
            bigger_tagged.storage_bits() > cfg.storage_bits(),
            "case {case}"
        );
        assert!(
            more_preds.storage_bits() > cfg.storage_bits(),
            "case {case}"
        );
    }
}

/// Trace generation is deterministic and PC-continuous for arbitrary seeds.
#[test]
fn prop_trace_determinism() {
    for case in 0..50 {
        let seed: u64 = rng(case).gen();
        let spec = WorkloadSpec::new("prop", seed);
        let a: Vec<_> = TraceGenerator::new(&spec).take(300).collect();
        let b: Vec<_> = TraceGenerator::new(&spec).take(300).collect();
        assert_eq!(&a, &b, "case {case}");
        for w in a.windows(2) {
            if w[0].is_last_uop() {
                assert_eq!(w[1].pc, w[0].next_pc(), "case {case}");
            } else {
                assert_eq!(w[1].pc, w[0].pc, "case {case}");
            }
        }
    }
}

/// The sharded table's flat → (shard, slot) mapping is a bijection for
/// arbitrary geometries: coordinates stay in bounds, distinct flat indices
/// map to distinct coordinates, every coordinate is hit, and writes through
/// flat indices read back losslessly whatever the shard count.
#[test]
fn prop_sharded_index_mapping_is_a_bijection() {
    for case in 0..CASES {
        let mut r = rng(case);
        let shards = 1usize << r.gen_range(0u32..6);
        let slots = r.gen_range(1usize..48);
        let total = shards * slots;
        let mut t: ShardedTable<u64> = ShardedTable::new(0, total, shards);
        assert_eq!(t.len(), total);
        assert_eq!(t.num_shards(), shards);
        assert_eq!(t.slots_per_shard(), slots);

        let mut seen = vec![false; total];
        for flat in 0..total {
            let (s, i) = t.locate(flat);
            assert!(s < shards && i < slots, "case {case}: out of bounds");
            let coord = s * slots + i;
            assert!(!seen[coord], "case {case}: coordinate hit twice");
            seen[coord] = true;
        }
        assert!(seen.iter().all(|&b| b), "case {case}: coordinate missed");

        // Writes through flat indices are lossless (no aliasing).
        for flat in 0..total {
            *t.get_mut(flat) = flat as u64 ^ 0xABCD;
        }
        for flat in 0..total {
            assert_eq!(*t.get(flat), flat as u64 ^ 0xABCD, "case {case}");
        }
    }
}

/// Mix interleaving conserves every context's µ-op stream: filtering the mix
/// by ASID recovers the plain per-context stream in order (all fields except
/// the global renumbering), global sequence numbers are contiguous, and the
/// committed-µ-op split across contexts is fair to within one quantum.
#[test]
fn prop_mix_interleaving_conserves_per_context_streams() {
    for case in 0..40 {
        let mut r = rng(case);
        let n_ctx = r.gen_range(1usize..4);
        let quantum = r.gen_range(1u64..400);
        let specs: Vec<WorkloadSpec> = (0..n_ctx)
            .map(|i| WorkloadSpec::new(format!("prop-mix-{i}"), r.gen()))
            .collect();
        let mix = MixSpec::new("prop", quantum, specs.clone());
        let stream: Vec<_> = mix.generator().take(3_000).collect();

        let mut committed = vec![0i64; n_ctx];
        for (i, u) in stream.iter().enumerate() {
            assert_eq!(u.seq, i as u64, "case {case}: seq not contiguous");
            assert!((u.asid as usize) < n_ctx, "case {case}: bad ASID");
            if !u.wrong_path {
                committed[u.asid as usize] += 1;
            }
        }
        let (min, max) = (
            *committed.iter().min().unwrap(),
            *committed.iter().max().unwrap(),
        );
        assert!(
            max - min <= quantum as i64,
            "case {case}: unfair split {committed:?} for quantum {quantum}"
        );

        for (asid, spec) in specs.iter().enumerate() {
            let got: Vec<_> = stream
                .iter()
                .filter(|u| u.asid as usize == asid)
                .cloned()
                .collect();
            let want: Vec<_> = TraceGenerator::new(spec).take(got.len()).collect();
            for (g, w) in got.iter().zip(&want) {
                let mut w2 = *w;
                w2.seq = g.seq;
                w2.asid = asid as u8;
                assert_eq!(*g, w2, "case {case}: context {asid} diverged");
            }
        }
    }
}

fn random_slices(case: u64) -> (TraceBuffer, u64, Vec<SliceBbv>) {
    let mut r = rng(case);
    let seed: u64 = r.gen();
    let n: u64 = r.gen_range(400u64..4_000);
    let slice_uops = r.gen_range(50u64..500);
    let buf = TraceBuffer::record(&WorkloadSpec::new("prop-sampling", seed), n);
    let slices = profile_slices(&buf, slice_uops);
    (buf, slice_uops, slices)
}

/// Slice profiling partitions the stream exactly: slices tile the buffer
/// index range with no gap or overlap, every slice but the last carries
/// exactly the configured committed µ-op count, and the per-slice committed
/// counts sum to the buffer's committed length — nothing is dropped or
/// double-counted, wrong-path riders included.
#[test]
fn prop_slice_partition_conserves_the_stream() {
    for case in 0..40 {
        let (buf, slice_uops, slices) = random_slices(case);
        assert!(!slices.is_empty(), "case {case}");
        assert_eq!(slices[0].start, 0, "case {case}");
        assert_eq!(slices.last().unwrap().end, buf.len(), "case {case}");
        for w in slices.windows(2) {
            assert_eq!(w[1].start, w[0].end, "case {case}: gap or overlap");
        }
        for (i, s) in slices.iter().enumerate() {
            assert_eq!(s.index, i, "case {case}");
            if i + 1 < slices.len() {
                assert_eq!(s.committed, slice_uops, "case {case}");
            } else {
                assert!(s.committed > 0 && s.committed <= slice_uops, "case {case}");
            }
        }
        let total: u64 = slices.iter().map(|s| s.committed).sum();
        assert_eq!(total, buf.committed_len() as u64, "case {case}");
    }
}

/// Every behaviour vector is an L1-normalised distribution over the
/// projected fetch-block space: components non-negative, summing to one.
#[test]
fn prop_bbv_vectors_are_l1_normalised() {
    for case in 0..40 {
        let (_, _, slices) = random_slices(case);
        for s in &slices {
            assert!(s.vector.iter().all(|&v| v >= 0.0), "case {case}");
            let sum: f64 = s.vector.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "case {case}: L1 mass {sum}");
        }
    }
}

/// Phase clustering conserves the slice population: assignments are in
/// range, member counts sum to the slice count, each phase's representative
/// really is assigned to that phase, each phase's weight is exactly its
/// members' committed share, and the weights sum to one.
#[test]
fn prop_clustering_conserves_weights_and_members() {
    for case in 0..40 {
        let mut r = rng(case ^ 0x5a5a);
        let (_, _, slices) = random_slices(case);
        let k = r.gen_range(1usize..12);
        let c = cluster_slices(&slices, k, r.gen());
        assert_eq!(c.assignments.len(), slices.len(), "case {case}");
        let members: usize = c.phases.iter().map(|p| p.members).sum();
        assert_eq!(members, slices.len(), "case {case}");
        let total_committed: u64 = slices.iter().map(|s| s.committed).sum();
        for (pi, p) in c.phases.iter().enumerate() {
            assert!(p.members > 0, "case {case}: empty phase");
            assert_eq!(c.assignments[p.representative], pi, "case {case}");
            let phase_committed: u64 = slices
                .iter()
                .zip(&c.assignments)
                .filter(|(_, &a)| a == pi)
                .map(|(s, _)| s.committed)
                .sum();
            assert_eq!(p.committed, phase_committed, "case {case}");
            let want = phase_committed as f64 / total_committed as f64;
            assert!((p.weight - want).abs() < 1e-12, "case {case}");
        }
        let total: f64 = c.phases.iter().map(|p| p.weight).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "case {case}: weights sum {total}"
        );
    }
}

/// The clusterer is a pure function of (slices, k, seed) — bit-identical
/// when recomputed — and the per-workload seed depends only on the workload
/// *name*, so one benchmark's phase table is invariant under permutations
/// (or subsetting) of the benchmark population around it.
#[test]
fn prop_clustering_deterministic_and_seed_position_independent() {
    for case in 0..20 {
        let mut r = rng(case ^ 0xc3c3);
        let (_, _, slices) = random_slices(case);
        let k = r.gen_range(1usize..10);
        let seed: u64 = r.gen();
        assert_eq!(
            cluster_slices(&slices, k, seed),
            cluster_slices(&slices, k, seed),
            "case {case}"
        );
        let name = format!("prop-seed-{case}");
        let spec_a = WorkloadSpec::new(name.clone(), r.gen());
        let spec_b = WorkloadSpec::new(name, r.gen());
        assert_eq!(
            workload_seed(&spec_a),
            workload_seed(&spec_b),
            "case {case}"
        );
    }
}

/// Requesting at least as many phases as there are slices degenerates
/// cleanly: no phase holds more than one slice (perfect sampling), and the
/// conservation properties still hold.
#[test]
fn prop_k_at_least_slice_count_gives_singleton_phases() {
    for case in 0..20 {
        let mut r = rng(case ^ 0x7e7e);
        let (_, _, slices) = random_slices(case);
        let k = slices.len() + r.gen_range(0usize..5);
        let c = cluster_slices(&slices, k, r.gen());
        assert!(c.phases.len() <= slices.len(), "case {case}");
        for p in &c.phases {
            assert_eq!(p.members, 1, "case {case}: non-singleton phase");
        }
        let members: usize = c.phases.iter().map(|p| p.members).sum();
        assert_eq!(members, slices.len(), "case {case}");
    }
}

/// The geometric mean lies between min and max and is scale-covariant.
#[test]
fn prop_gmean_bounds() {
    for case in 0..CASES {
        let mut r = rng(case);
        let n = r.gen_range(1usize..20);
        let values: Vec<f64> = (0..n).map(|_| 0.1 + r.gen::<f64>() * 9.9).collect();
        let k = 0.1 + r.gen::<f64>() * 9.9;
        let g = gmean(&values);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(g >= min - 1e-9 && g <= max + 1e-9, "case {case}");
        let scaled: Vec<f64> = values.iter().map(|v| v * k).collect();
        assert!(
            (gmean(&scaled) - g * k).abs() < 1e-6 * g.max(1.0) * k.max(1.0),
            "case {case}"
        );
    }
}
