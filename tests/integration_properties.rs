//! Property-based tests on the core data structures and cross-crate invariants.

use bebop::{BlockDVtageConfig, FifoUpdateQueue, SpecWindowSize, SpeculativeWindow};
use bebop_isa::{byte_index_in_block, fetch_block_pc, FetchBlockLayout};
use bebop_trace::{TraceGenerator, WorkloadSpec};
use bebop_uarch::{gmean, OccupancyRing, SlotPool};
use proptest::prelude::*;

proptest! {
    /// Fetch-block arithmetic: the block PC is aligned, contains the PC, and the
    /// byte index is the offset within the block.
    #[test]
    fn prop_fetch_block_arithmetic(pc in any::<u64>(), shift in 3u32..8) {
        let block_bytes = 1u64 << shift;
        let block = fetch_block_pc(pc, block_bytes);
        let byte = byte_index_in_block(pc, block_bytes);
        prop_assert_eq!(block % block_bytes, 0);
        prop_assert!(pc >= block && pc < block + block_bytes);
        prop_assert_eq!(block + u64::from(byte), pc);
    }

    /// Block layouts never place an instruction past the end of the block and keep
    /// boundaries strictly increasing.
    #[test]
    fn prop_fetch_block_layout(lengths in proptest::collection::vec(1u8..=8, 1..10)) {
        let layout = FetchBlockLayout::from_lengths(16, &lengths);
        let bounds = layout.boundaries();
        for w in bounds.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
        for &b in bounds {
            prop_assert!(u64::from(b) < 16);
        }
    }

    /// The speculative window always returns the most recent matching entry, and a
    /// squash removes exactly the entries younger than the flush point.
    #[test]
    fn prop_spec_window_most_recent_and_squash(
        blocks in proptest::collection::vec(0u64..8, 1..200),
        capacity in 1usize..64,
        flush_at in 0usize..200,
    ) {
        let mut w = SpeculativeWindow::new(Some(capacity), 15);
        for (seq, b) in blocks.iter().enumerate() {
            w.push(b * 16, seq as u64, vec![Some(seq as u64)]);
        }
        // Most recent matching entry wins.
        for b in 0u64..8 {
            if let Some(e) = w.lookup(b * 16) {
                let expected = blocks
                    .iter()
                    .enumerate()
                    .rev()
                    .find(|(seq, &blk)| blk == b && *seq >= blocks.len().saturating_sub(capacity))
                    .map(|(seq, _)| seq as u64);
                prop_assert_eq!(Some(e.seq), expected);
            }
        }
        // Squash drops strictly younger entries only.
        let flush_seq = flush_at.min(blocks.len()) as u64;
        w.squash(flush_seq);
        for b in 0u64..8 {
            if let Some(e) = w.lookup(b * 16) {
                prop_assert!(e.seq <= flush_seq);
            }
        }
    }

    /// The FIFO update queue preserves order and rollback never leaves younger
    /// entries behind.
    #[test]
    fn prop_fifo_order_and_rollback(seqs in proptest::collection::vec(1u64..50, 1..50), flush in 0u64..2000) {
        let mut q = FifoUpdateQueue::new();
        let mut acc = 0u64;
        let mut pushed = Vec::new();
        for s in seqs {
            acc += s;
            q.push(acc, acc);
            pushed.push(acc);
        }
        q.squash(flush);
        let remaining: Vec<u64> = std::iter::from_fn(|| q.pop_front().map(|(s, _)| s)).collect();
        let expected: Vec<u64> = pushed.into_iter().filter(|&s| s <= flush).collect();
        prop_assert_eq!(remaining, expected);
    }

    /// Slot pools never exceed their per-cycle width and never go backwards.
    #[test]
    fn prop_slot_pool_width(width in 1u16..8, requests in proptest::collection::vec(0u64..100, 1..200)) {
        let mut pool = SlotPool::new(width);
        let mut per_cycle = std::collections::HashMap::new();
        for t in requests {
            let c = pool.allocate(t);
            prop_assert!(c >= t);
            let n = per_cycle.entry(c).or_insert(0u16);
            *n += 1;
            prop_assert!(*n <= width);
        }
    }

    /// Occupancy rings never allow more in-flight entries than their capacity:
    /// the constrained allocation cycle is at or after the release of the entry
    /// `capacity` positions earlier.
    #[test]
    fn prop_occupancy_ring(capacity in 1usize..16, releases in proptest::collection::vec(1u64..1000, 1..100)) {
        let mut ring = OccupancyRing::new(capacity);
        let mut history: Vec<u64> = Vec::new();
        for (i, r) in releases.iter().enumerate() {
            let constrained = ring.constrain(0);
            if i >= capacity {
                prop_assert!(constrained >= history[i - capacity]);
            }
            let release = constrained + r;
            ring.push(release);
            history.push(release);
        }
    }

    /// Storage accounting is monotone in every size parameter.
    #[test]
    fn prop_storage_monotone(
        base in 64usize..1024,
        tagged in 64usize..512,
        npred in 1usize..8,
        stride_bits in proptest::sample::select(vec![8u32, 16, 32, 64]),
    ) {
        let cfg = BlockDVtageConfig {
            npred,
            base_entries: base,
            tagged_entries: tagged,
            stride_bits,
            spec_window: SpecWindowSize::Entries(32),
            ..BlockDVtageConfig::default()
        };
        let bigger_base = BlockDVtageConfig { base_entries: base * 2, ..cfg.clone() };
        let bigger_tagged = BlockDVtageConfig { tagged_entries: tagged * 2, ..cfg.clone() };
        let more_preds = BlockDVtageConfig { npred: npred + 1, ..cfg.clone() };
        prop_assert!(bigger_base.storage_bits() > cfg.storage_bits());
        prop_assert!(bigger_tagged.storage_bits() > cfg.storage_bits());
        prop_assert!(more_preds.storage_bits() > cfg.storage_bits());
    }

    /// Trace generation is deterministic and PC-continuous for arbitrary seeds.
    #[test]
    fn prop_trace_determinism(seed in any::<u64>()) {
        let spec = WorkloadSpec::new("prop", seed);
        let a: Vec<_> = TraceGenerator::new(&spec).take(300).collect();
        let b: Vec<_> = TraceGenerator::new(&spec).take(300).collect();
        prop_assert_eq!(&a, &b);
        for w in a.windows(2) {
            if w[0].is_last_uop() {
                prop_assert_eq!(w[1].pc, w[0].next_pc());
            } else {
                prop_assert_eq!(w[1].pc, w[0].pc);
            }
        }
    }

    /// The geometric mean lies between min and max and is scale-covariant.
    #[test]
    fn prop_gmean_bounds(values in proptest::collection::vec(0.1f64..10.0, 1..20), k in 0.1f64..10.0) {
        let g = gmean(&values);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(g >= min - 1e-9 && g <= max + 1e-9);
        let scaled: Vec<f64> = values.iter().map(|v| v * k).collect();
        prop_assert!((gmean(&scaled) - g * k).abs() < 1e-6 * g.max(1.0) * k.max(1.0));
    }
}
