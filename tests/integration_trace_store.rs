//! Persistence-fidelity suite for the on-disk trace store.
//!
//! A recording that travels through the store — serialised, checksummed,
//! written, reloaded — must be indistinguishable from the live generation it
//! recorded: bit-identical µ-op streams and bit-identical `SimStats` for every
//! built-in predictor kind. And a file that *cannot* be trusted (truncated,
//! wrong magic or version, flipped payload bit, recorded for a different
//! workload) must be rejected and transparently regenerated, never replayed.

use bebop::{
    configs, run_source, spec_fingerprint, MixSpec, PipelineConfig, PredictorKind, TraceBuffer,
    TraceStore, UopSource, WorkloadSpec,
};
use bebop_trace::{decode_trace, encode_trace, StoreError, TraceKey, TRACE_FORMAT_VERSION};
use std::fs;
use std::path::PathBuf;

const UOPS: u64 = 20_000;

fn tmp_store(tag: &str) -> (PathBuf, TraceStore) {
    let dir = std::env::temp_dir().join(format!(
        "bebop-integration-store-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    let store = TraceStore::open(&dir).expect("store directory opens");
    (dir, store)
}

fn all_kinds() -> Vec<PredictorKind> {
    vec![
        PredictorKind::None,
        PredictorKind::Perfect,
        PredictorKind::LastValue,
        PredictorKind::Stride,
        PredictorKind::TwoDeltaStride,
        PredictorKind::Vtage,
        PredictorKind::VtageStrideHybrid,
        PredictorKind::DVtage,
        PredictorKind::BlockDVtage(configs::medium()),
    ]
}

#[test]
fn store_loaded_replay_is_bit_identical_for_every_predictor_kind() {
    let (dir, store) = tmp_store("fidelity");
    let spec = bebop::spec_benchmark("401.bzip2");
    let (recorded, loaded_flag) = store.load_or_record(&spec, UOPS);
    assert!(!loaded_flag, "first materialisation must record");
    let reloaded = store.load(&spec, UOPS).expect("store hit after save");

    // Stream-level equality first (the strongest, cheapest check) ...
    assert_eq!(
        recorded.replay().collect::<Vec<_>>(),
        reloaded.replay().collect::<Vec<_>>()
    );
    // ... then end-to-end: simulating the reloaded trace must match live
    // generation bit-for-bit, for every predictor kind.
    let pipeline = PipelineConfig::eole_4_60();
    for kind in all_kinds() {
        let live = run_source(UopSource::Live(&spec), &pipeline, &kind, UOPS);
        let replayed = run_source(UopSource::Replay(&reloaded), &pipeline, &kind, UOPS);
        assert_eq!(
            live,
            replayed,
            "{} diverged through the trace store",
            kind.label()
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn byte_format_round_trips_and_rejects_mangling() {
    let spec = WorkloadSpec::named_demo("bytes");
    let buf = TraceBuffer::record(&spec, 5_000);
    let bytes = encode_trace(&spec, &buf);

    let decoded = decode_trace(&bytes).expect("clean bytes decode");
    assert_eq!(decoded.fingerprint, spec_fingerprint(&spec));
    assert_eq!(decoded.seed, spec.seed);
    assert_eq!(
        buf.replay().collect::<Vec<_>>(),
        decoded.buffer.replay().collect::<Vec<_>>()
    );

    // Truncation at every interesting boundary.
    for cut in [0, 7, 12, 63, 64, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            decode_trace(&bytes[..cut]).is_err(),
            "truncation at {cut} must be rejected"
        );
    }
    // Wrong magic.
    let mut mangled = bytes.clone();
    mangled[0] = b'X';
    assert!(matches!(decode_trace(&mangled), Err(StoreError::BadMagic)));
    // Wrong (future) version.
    let mut future = bytes.clone();
    future[8..12].copy_from_slice(&(TRACE_FORMAT_VERSION + 1).to_le_bytes());
    assert!(matches!(
        decode_trace(&future),
        Err(StoreError::VersionMismatch(_))
    ));
    // A single flipped payload bit trips the checksum.
    let mut flipped = bytes.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x80;
    assert!(matches!(
        decode_trace(&flipped),
        Err(StoreError::ChecksumMismatch)
    ));
}

#[test]
fn corrupt_and_stale_files_regenerate_transparently() {
    let (dir, store) = tmp_store("reject");
    let spec = WorkloadSpec::named_demo("reject-demo");
    let (original, _) = store.load_or_record(&spec, 3_000);
    let path = store.trace_path(&spec, 3_000);
    assert!(path.exists());

    // Corrupt the payload on disk: load must miss, delete the file, and
    // load_or_record must rebuild an identical recording.
    let mut bytes = fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(&path, &bytes).unwrap();
    assert!(store.load(&spec, 3_000).is_none(), "corrupt file must miss");
    assert!(!path.exists(), "corrupt file must be deleted");
    let (rebuilt, loaded) = store.load_or_record(&spec, 3_000);
    assert!(!loaded, "rebuild must regenerate, not load");
    assert_eq!(
        original.replay().collect::<Vec<_>>(),
        rebuilt.replay().collect::<Vec<_>>()
    );

    // A file recorded for a *different* spec at this path (fingerprint
    // mismatch) is stale, not usable: miss + delete + regenerate.
    let mut other = spec.clone();
    other.seed ^= 0xDEAD_BEEF;
    let foreign = TraceBuffer::record(&other, 3_000);
    fs::write(&path, encode_trace(&other, &foreign)).unwrap();
    assert!(
        store.load(&spec, 3_000).is_none(),
        "mismatched fingerprint must miss"
    );
    assert!(!path.exists());
    let (again, loaded) = store.load_or_record(&spec, 3_000);
    assert!(!loaded);
    let pipeline = PipelineConfig::baseline_vp_6_60();
    let live = run_source(
        UopSource::Live(&spec),
        &pipeline,
        &PredictorKind::DVtage,
        3_000,
    );
    let replay = run_source(
        UopSource::Replay(&again),
        &pipeline,
        &PredictorKind::DVtage,
        3_000,
    );
    assert_eq!(live, replay, "regenerated trace must match live generation");
    let _ = fs::remove_dir_all(&dir);
}

/// FNV-1a, reimplemented here so the tests can re-checksum deliberately
/// doctored headers (same function as the store's).
fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Rewrites the header checksum of a trace file whose header was edited, so
/// version-downgrade tests exercise the *version* check, not the checksum.
fn rechecksum(bytes: &mut [u8]) {
    let sum = fnv(fnv(0xcbf2_9ce4_8422_2325, &bytes[..56]), &bytes[64..]);
    bytes[56..64].copy_from_slice(&sum.to_le_bytes());
}

#[test]
fn format_v2_files_are_rejected_and_regenerated() {
    // A valid v3 file downgraded to version 2 (checksum made consistent, so
    // only the version differs) must be rejected with VersionMismatch — a
    // v2-era recording has no ASID lane and meta-only wrong-path semantics,
    // so mis-replaying it silently would corrupt mix experiments — and the
    // store must delete it and regenerate transparently.
    assert_eq!(TRACE_FORMAT_VERSION, 3, "update this test on a format bump");
    let (dir, store) = tmp_store("v2");
    let spec = WorkloadSpec::named_demo("v2-reject");
    let (original, _) = store.load_or_record(&spec, 2_000);
    let path = store.trace_path(&spec, 2_000);

    let mut bytes = fs::read(&path).unwrap();
    bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
    rechecksum(&mut bytes);
    assert!(
        matches!(decode_trace(&bytes), Err(StoreError::VersionMismatch(2))),
        "a checksum-consistent v2 file must fail on the version, not the checksum"
    );
    fs::write(&path, &bytes).unwrap();

    assert!(store.load(&spec, 2_000).is_none(), "v2 file must miss");
    assert!(!path.exists(), "v2 file must be deleted");
    let (rebuilt, loaded) = store.load_or_record(&spec, 2_000);
    assert!(!loaded, "regeneration, not a load");
    assert_eq!(
        original.replay().collect::<Vec<_>>(),
        rebuilt.replay().collect::<Vec<_>>()
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn mix_recordings_round_trip_with_their_asid_lane() {
    let (dir, store) = tmp_store("mix");
    let mix = MixSpec::pair(
        500,
        bebop::spec_benchmark("171.swim"),
        bebop::spec_benchmark("429.mcf"),
    );

    let (cold, was_hit) = store.load_or_record_mix(&mix, UOPS);
    assert!(!was_hit, "first materialisation must record");
    let (warm, was_hit) = store.load_or_record_mix(&mix, UOPS);
    assert!(was_hit, "second materialisation must load");

    // Bit-identity including the ASID lane: the store round trip preserves
    // every context tag.
    let live: Vec<_> = mix.generator().take(cold.len()).collect();
    let cold_replay: Vec<_> = cold.replay().collect();
    let warm_replay: Vec<_> = warm.replay().collect();
    assert_eq!(live, cold_replay, "recording diverged from live interleave");
    assert_eq!(cold_replay, warm_replay, "store round trip lost fidelity");
    assert!(warm_replay.iter().any(|u| u.asid == 1), "tags must survive");

    // And end-to-end: a mix-mode simulation of the loaded trace matches one
    // of the freshly recorded trace bit-for-bit.
    let pipe = PipelineConfig::baseline_vp_6_60().with_mix(bebop::SharingPolicy::Tagged);
    let kind = PredictorKind::BlockDVtage(configs::medium_mix(bebop::SharingPolicy::Tagged, 2));
    let a = run_source(UopSource::Replay(&cold), &pipe, &kind, UOPS);
    let b = run_source(UopSource::Replay(&warm), &pipe, &kind, UOPS);
    assert_eq!(a, b, "mix simulation diverged through the store");

    // Mix keys never alias plain workload keys.
    let key = TraceKey::for_mix(&mix);
    for spec in &mix.contexts {
        assert_ne!(key.fingerprint, spec_fingerprint(spec));
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn distinct_budgets_and_specs_never_alias() {
    let (dir, store) = tmp_store("alias");
    let a = WorkloadSpec::named_demo("alias-a");
    let mut b = a.clone();
    b.name = "alias-b".to_string();
    store.load_or_record(&a, 1_000);
    store.load_or_record(&a, 2_000);
    store.load_or_record(&b, 1_000);

    let a1 = store.load(&a, 1_000).expect("hit");
    let a2 = store.load(&a, 2_000).expect("hit");
    let b1 = store.load(&b, 1_000).expect("hit");
    assert_eq!(a1.len(), 1_000);
    assert_eq!(a2.len(), 2_000);
    // Same seed and profile, different name: identical stream content is
    // fine, but the recordings must live under distinct keys.
    assert_ne!(store.trace_path(&a, 1_000), store.trace_path(&b, 1_000));
    assert_eq!(b1.len(), 1_000);
    let _ = fs::remove_dir_all(&dir);
}
