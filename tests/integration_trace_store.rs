//! Persistence-fidelity suite for the on-disk trace store.
//!
//! A recording that travels through the store — serialised, checksummed,
//! written, reloaded — must be indistinguishable from the live generation it
//! recorded: bit-identical µ-op streams and bit-identical `SimStats` for every
//! built-in predictor kind. And a file that *cannot* be trusted (truncated,
//! wrong magic or version, flipped payload bit, recorded for a different
//! workload) must be rejected and transparently regenerated, never replayed.

use bebop::{
    configs, run_source, spec_fingerprint, PipelineConfig, PredictorKind, TraceBuffer, TraceStore,
    UopSource, WorkloadSpec,
};
use bebop_trace::{decode_trace, encode_trace, StoreError, TRACE_FORMAT_VERSION};
use std::fs;
use std::path::PathBuf;

const UOPS: u64 = 20_000;

fn tmp_store(tag: &str) -> (PathBuf, TraceStore) {
    let dir = std::env::temp_dir().join(format!(
        "bebop-integration-store-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    let store = TraceStore::open(&dir).expect("store directory opens");
    (dir, store)
}

fn all_kinds() -> Vec<PredictorKind> {
    vec![
        PredictorKind::None,
        PredictorKind::Perfect,
        PredictorKind::LastValue,
        PredictorKind::Stride,
        PredictorKind::TwoDeltaStride,
        PredictorKind::Vtage,
        PredictorKind::VtageStrideHybrid,
        PredictorKind::DVtage,
        PredictorKind::BlockDVtage(configs::medium()),
    ]
}

#[test]
fn store_loaded_replay_is_bit_identical_for_every_predictor_kind() {
    let (dir, store) = tmp_store("fidelity");
    let spec = bebop::spec_benchmark("401.bzip2");
    let (recorded, loaded_flag) = store.load_or_record(&spec, UOPS);
    assert!(!loaded_flag, "first materialisation must record");
    let reloaded = store.load(&spec, UOPS).expect("store hit after save");

    // Stream-level equality first (the strongest, cheapest check) ...
    assert_eq!(
        recorded.replay().collect::<Vec<_>>(),
        reloaded.replay().collect::<Vec<_>>()
    );
    // ... then end-to-end: simulating the reloaded trace must match live
    // generation bit-for-bit, for every predictor kind.
    let pipeline = PipelineConfig::eole_4_60();
    for kind in all_kinds() {
        let live = run_source(UopSource::Live(&spec), &pipeline, &kind, UOPS);
        let replayed = run_source(UopSource::Replay(&reloaded), &pipeline, &kind, UOPS);
        assert_eq!(
            live,
            replayed,
            "{} diverged through the trace store",
            kind.label()
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn byte_format_round_trips_and_rejects_mangling() {
    let spec = WorkloadSpec::named_demo("bytes");
    let buf = TraceBuffer::record(&spec, 5_000);
    let bytes = encode_trace(&spec, &buf);

    let decoded = decode_trace(&bytes).expect("clean bytes decode");
    assert_eq!(decoded.fingerprint, spec_fingerprint(&spec));
    assert_eq!(decoded.seed, spec.seed);
    assert_eq!(
        buf.replay().collect::<Vec<_>>(),
        decoded.buffer.replay().collect::<Vec<_>>()
    );

    // Truncation at every interesting boundary.
    for cut in [0, 7, 12, 63, 64, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            decode_trace(&bytes[..cut]).is_err(),
            "truncation at {cut} must be rejected"
        );
    }
    // Wrong magic.
    let mut mangled = bytes.clone();
    mangled[0] = b'X';
    assert!(matches!(decode_trace(&mangled), Err(StoreError::BadMagic)));
    // Wrong (future) version.
    let mut future = bytes.clone();
    future[8..12].copy_from_slice(&(TRACE_FORMAT_VERSION + 1).to_le_bytes());
    assert!(matches!(
        decode_trace(&future),
        Err(StoreError::VersionMismatch(_))
    ));
    // A single flipped payload bit trips the checksum.
    let mut flipped = bytes.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x80;
    assert!(matches!(
        decode_trace(&flipped),
        Err(StoreError::ChecksumMismatch)
    ));
}

#[test]
fn corrupt_and_stale_files_regenerate_transparently() {
    let (dir, store) = tmp_store("reject");
    let spec = WorkloadSpec::named_demo("reject-demo");
    let (original, _) = store.load_or_record(&spec, 3_000);
    let path = store.trace_path(&spec, 3_000);
    assert!(path.exists());

    // Corrupt the payload on disk: load must miss, delete the file, and
    // load_or_record must rebuild an identical recording.
    let mut bytes = fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(&path, &bytes).unwrap();
    assert!(store.load(&spec, 3_000).is_none(), "corrupt file must miss");
    assert!(!path.exists(), "corrupt file must be deleted");
    let (rebuilt, loaded) = store.load_or_record(&spec, 3_000);
    assert!(!loaded, "rebuild must regenerate, not load");
    assert_eq!(
        original.replay().collect::<Vec<_>>(),
        rebuilt.replay().collect::<Vec<_>>()
    );

    // A file recorded for a *different* spec at this path (fingerprint
    // mismatch) is stale, not usable: miss + delete + regenerate.
    let mut other = spec.clone();
    other.seed ^= 0xDEAD_BEEF;
    let foreign = TraceBuffer::record(&other, 3_000);
    fs::write(&path, encode_trace(&other, &foreign)).unwrap();
    assert!(
        store.load(&spec, 3_000).is_none(),
        "mismatched fingerprint must miss"
    );
    assert!(!path.exists());
    let (again, loaded) = store.load_or_record(&spec, 3_000);
    assert!(!loaded);
    let pipeline = PipelineConfig::baseline_vp_6_60();
    let live = run_source(
        UopSource::Live(&spec),
        &pipeline,
        &PredictorKind::DVtage,
        3_000,
    );
    let replay = run_source(
        UopSource::Replay(&again),
        &pipeline,
        &PredictorKind::DVtage,
        3_000,
    );
    assert_eq!(live, replay, "regenerated trace must match live generation");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn distinct_budgets_and_specs_never_alias() {
    let (dir, store) = tmp_store("alias");
    let a = WorkloadSpec::named_demo("alias-a");
    let mut b = a.clone();
    b.name = "alias-b".to_string();
    store.load_or_record(&a, 1_000);
    store.load_or_record(&a, 2_000);
    store.load_or_record(&b, 1_000);

    let a1 = store.load(&a, 1_000).expect("hit");
    let a2 = store.load(&a, 2_000).expect("hit");
    let b1 = store.load(&b, 1_000).expect("hit");
    assert_eq!(a1.len(), 1_000);
    assert_eq!(a2.len(), 2_000);
    // Same seed and profile, different name: identical stream content is
    // fine, but the recordings must live under distinct keys.
    assert_ne!(store.trace_path(&a, 1_000), store.trace_path(&b, 1_000));
    assert_eq!(b1.len(), 1_000);
    let _ = fs::remove_dir_all(&dir);
}
