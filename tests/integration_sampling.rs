//! Statistical differential harness for SimPoint-style phase sampling.
//!
//! The sampler (`bebop_bench::sampling`) is a *lossy estimator*: it simulates
//! a handful of representative slices and extrapolates whole-run metrics from
//! phase weights. That is only trustworthy if (a) the estimate lands inside
//! the error bound the reporter itself declares, for every predictor kind,
//! and (b) the whole pipeline — BBV profiling, k-means clustering, functional
//! warming, weighted combination — is exactly deterministic, so a sampled
//! figure in a paper or a perf report can be reproduced bit-for-bit.
//!
//! The tests here check both properties differentially against full-run
//! goldens produced by the ordinary driver, at the same µ-op budgets the
//! `figures` front end uses.

use std::sync::Mutex;

use bebop::{configs, par, run_one, PipelineConfig, PredictorKind};
use bebop_bench::sampling::{run_sampled, run_sampled_with, SamplingConfig};
use bebop_bench::{workloads, TraceCachePolicy, TraceStore};

/// `par::set_threads` is process-global; tests that change it must not
/// interleave with each other (the harness runs tests on multiple threads).
static THREADS_LOCK: Mutex<()> = Mutex::new(());

fn pipe() -> PipelineConfig {
    PipelineConfig::baseline_vp_6_60()
}

/// The ISSUE acceptance check, verbatim: sampled D-VTAGE accuracy/coverage
/// (and IPC) within the declared confidence interval of the full-run golden
/// for **all** benchmark specs at 200 K µops, under both a serial and a
/// parallel fan-out — and the two fan-outs bit-identical to each other.
#[test]
fn dvtage_within_declared_bounds_on_every_benchmark_serial_and_par() {
    let _guard = THREADS_LOCK.lock().unwrap();
    let specs = workloads(false);
    let uops = 200_000;
    let cfg = SamplingConfig::for_budget(uops);
    let goldens = par::par_map(&specs, |s| {
        run_one(s, &pipe(), &PredictorKind::DVtage, uops)
    });

    par::set_threads(1);
    let serial = run_sampled(&specs, uops, &cfg, &TraceCachePolicy::default(), None);
    par::set_threads(0);
    let parallel = run_sampled(&specs, uops, &cfg, &TraceCachePolicy::default(), None);

    assert_eq!(
        serial.rows, parallel.rows,
        "serial and parallel sampled runs must be bit-identical"
    );
    assert_eq!(serial.simulated_uops, parallel.simulated_uops);
    assert!(
        serial.simulated_uops * 5 <= serial.full_uops,
        "sampling must simulate at most 1/5 of the full budget: {} vs {}",
        serial.simulated_uops,
        serial.full_uops
    );
    for (row, golden) in serial.rows.iter().zip(&goldens) {
        let violations = row.sampled.bound_violations(golden);
        assert!(
            violations.is_empty(),
            "{}: sampled estimate outside its declared bound: {violations:?}",
            row.name
        );
    }
}

/// Every `PredictorKind` — including the block-based BeBoP configuration —
/// must estimate within its declared bounds on the representative subset at
/// the 200 K µop budget. The bounds are calibrated constants, so a predictor
/// whose warm-up behaviour the sampler cannot capture fails here loudly
/// instead of silently reporting a wrong figure.
#[test]
fn every_predictor_kind_within_declared_bounds_on_the_subset() {
    let specs = workloads(true);
    let uops = 200_000;
    let cfg = SamplingConfig::for_budget(uops);
    let kinds: Vec<PredictorKind> = vec![
        PredictorKind::None,
        PredictorKind::Perfect,
        PredictorKind::LastValue,
        PredictorKind::Stride,
        PredictorKind::TwoDeltaStride,
        PredictorKind::Vtage,
        PredictorKind::VtageStrideHybrid,
        PredictorKind::DVtage,
        PredictorKind::BlockDVtage(configs::medium()),
    ];
    for kind in &kinds {
        let goldens = par::par_map(&specs, |s| run_one(s, &pipe(), kind, uops));
        let out = run_sampled_with(
            &specs,
            uops,
            &cfg,
            &pipe(),
            kind,
            &TraceCachePolicy::default(),
            None,
        );
        assert!(out.simulated_uops * 5 <= out.full_uops);
        for (row, golden) in out.rows.iter().zip(&goldens) {
            let violations = row.sampled.bound_violations(golden);
            assert!(
                violations.is_empty(),
                "{kind:?} on {}: {violations:?}",
                row.name
            );
        }
    }
}

/// Phases, weights, and per-phase `SimStats` must be bit-identical whether
/// the slice population fans out over 1, 2, or 8 worker threads (and the
/// auto default). One test covers all counts so the comparisons cannot race
/// on the global thread override.
#[test]
fn phase_tables_weights_and_stats_bit_identical_across_thread_counts() {
    let _guard = THREADS_LOCK.lock().unwrap();
    let specs = workloads(true);
    let uops = 50_000;
    let cfg = SamplingConfig::for_budget(uops);
    let mut outcomes = Vec::new();
    for threads in [1usize, 2, 8, 0] {
        par::set_threads(threads);
        outcomes.push((
            threads,
            run_sampled(&specs, uops, &cfg, &TraceCachePolicy::default(), None),
        ));
    }
    par::set_threads(0);
    let (_, reference) = &outcomes[0];
    for (threads, out) in &outcomes[1..] {
        assert_eq!(
            reference.rows, out.rows,
            "rows diverged at --threads {threads}"
        );
        assert_eq!(reference.simulated_uops, out.simulated_uops);
        assert_eq!(reference.full_uops, out.full_uops);
    }
    // The rows really carry phase structure worth comparing.
    for row in &reference.rows {
        assert!(row.phases >= 1);
        assert_eq!(row.weights.len(), row.phases);
        assert_eq!(row.per_phase.len(), row.phases);
        assert!((row.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}

/// A re-run that replays traces out of the persistent store must reproduce
/// the from-scratch run bit-for-bit: same phase tables, same weights, same
/// sampled statistics — the store is a cache, never an input.
#[test]
fn rerun_from_the_trace_store_is_bit_identical() {
    let dir = std::env::temp_dir().join(format!("bebop-sampling-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = TraceStore::open(&dir).expect("open trace store");
    let specs = workloads(true);
    let uops = 30_000;
    let cfg = SamplingConfig::for_budget(uops);

    let cold = run_sampled(
        &specs,
        uops,
        &cfg,
        &TraceCachePolicy::default(),
        Some(&store),
    );
    assert_eq!(cold.recorded_traces, specs.len());
    assert_eq!(cold.loaded_traces, 0);

    let warm = run_sampled(
        &specs,
        uops,
        &cfg,
        &TraceCachePolicy::default(),
        Some(&store),
    );
    assert_eq!(warm.loaded_traces, specs.len());
    assert_eq!(warm.recorded_traces, 0);
    assert_eq!(warm.generated_uops, 0);

    assert_eq!(cold.rows, warm.rows);
    assert_eq!(cold.simulated_uops, warm.simulated_uops);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two invocations of the `figures` binary in `--sample` mode must agree on
/// every output byte apart from wall-clock timings: the human-readable table
/// (filtered exactly like CI filters it) and the JSON report with its timing
/// fields dropped.
#[test]
fn figures_sample_output_is_byte_identical_across_runs() {
    let tmp = std::env::temp_dir().join(format!("bebop-sampling-json-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).expect("create tmp dir");

    let run = |tag: &str| -> (String, String) {
        let json = tmp.join(format!("{tag}.json"));
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_figures"))
            .args([
                "--sample",
                "--subset",
                "--uops",
                "20000",
                "--json",
                json.to_str().expect("utf-8 tmp path"),
            ])
            .output()
            .expect("run figures --sample");
        assert!(
            out.status.success(),
            "figures --sample failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        // Drop the banner/timing lines, exactly as the CI determinism jobs do
        // (`grep -vE '^(BeBoP|Trace)'`), and the timing fields of the JSON.
        let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
        let body: String = stdout
            .lines()
            .filter(|l| !l.starts_with("BeBoP") && !l.starts_with("Trace"))
            .collect::<Vec<_>>()
            .join("\n");
        let report = std::fs::read_to_string(&json).expect("json written");
        let stable: String = report
            .lines()
            .filter(|l| !l.contains("wall_s") && !l.contains("uops_per_sec"))
            .collect::<Vec<_>>()
            .join("\n");
        (body, stable)
    };

    let (body_a, json_a) = run("a");
    let (body_b, json_b) = run("b");
    assert_eq!(body_a, body_b, "sample table must be byte-identical");
    assert_eq!(json_a, json_b, "sample JSON must be byte-identical");
    assert!(json_a.contains("\"sampled_slices\""));
    assert!(json_a.contains("\"sampled_phases\""));
    assert!(
        body_a.contains("declared error bound"),
        "sample output must declare its error bound:\n{body_a}"
    );
    let _ = std::fs::remove_dir_all(&tmp);
}
