//! End-to-end integration tests: workloads → pipeline → predictors, spanning every
//! crate of the workspace.

use bebop::{configs, run_one, PredictorKind};
use bebop_trace::{spec_benchmark, WorkloadSpec};
use bebop_uarch::PipelineConfig;

// Long enough for forward-probabilistic confidence (~130 correct predictions per
// entry) to saturate, so realistic predictors are out of their warm-up phase.
const UOPS: u64 = 120_000;

#[test]
fn simulations_are_deterministic_end_to_end() {
    let spec = spec_benchmark("171.swim");
    let cfg = PipelineConfig::eole_4_60();
    let kind = PredictorKind::BlockDVtage(configs::medium());
    let a = run_one(&spec, &cfg, &kind, UOPS);
    let b = run_one(&spec, &cfg, &kind, UOPS);
    assert_eq!(a, b);
}

#[test]
fn value_prediction_with_real_predictors_never_collapses_performance() {
    // Confidence gating (FPC) must keep accuracy high enough that value prediction
    // does not slow the machine down appreciably on any class of workload.
    for name in ["171.swim", "429.mcf", "186.crafty", "403.gcc"] {
        let spec = spec_benchmark(name);
        let base = run_one(
            &spec,
            &PipelineConfig::baseline_6_60(),
            &PredictorKind::None,
            UOPS,
        );
        let vp = run_one(
            &spec,
            &PipelineConfig::baseline_vp_6_60(),
            &PredictorKind::DVtage,
            UOPS,
        );
        let speedup = vp.speedup_over(&base);
        assert!(
            speedup > 0.93,
            "{name}: D-VTAGE slowed the pipeline to {speedup:.3}"
        );
        assert!(
            vp.vp.accuracy() > 0.98 || vp.vp.predicted < 100,
            "{name}: accuracy {:.4} too low",
            vp.vp.accuracy()
        );
    }
}

#[test]
fn strided_fp_workload_gains_from_bebop_dvtage() {
    let spec = spec_benchmark("171.swim");
    let base = run_one(
        &spec,
        &PipelineConfig::baseline_6_60(),
        &PredictorKind::None,
        UOPS,
    );
    let bebop = run_one(
        &spec,
        &PipelineConfig::eole_4_60(),
        &PredictorKind::BlockDVtage(configs::medium()),
        UOPS,
    );
    assert!(
        bebop.speedup_over(&base) > 1.03,
        "swim-like workload should gain from BeBoP D-VTAGE, got {:.3}",
        bebop.speedup_over(&base)
    );
    assert!(bebop.vp.coverage() > 0.05);
}

#[test]
fn unpredictable_branchy_workload_neither_gains_nor_loses_much() {
    let spec = spec_benchmark("186.crafty");
    let base = run_one(
        &spec,
        &PipelineConfig::baseline_6_60(),
        &PredictorKind::None,
        UOPS,
    );
    let bebop = run_one(
        &spec,
        &PipelineConfig::eole_4_60(),
        &PredictorKind::BlockDVtage(configs::medium()),
        UOPS,
    );
    let s = bebop.speedup_over(&base);
    assert!(
        (0.9..1.3).contains(&s),
        "low-predictability workload should be near 1.0, got {s:.3}"
    );
}

#[test]
fn eole_4_60_tracks_baseline_vp_6_60() {
    // The Figure 5b result: reducing the issue width from 6 to 4 under EOLE loses
    // very little once value prediction is in place.
    let mut slowdowns = Vec::new();
    for name in ["171.swim", "403.gcc", "401.bzip2"] {
        let spec = spec_benchmark(name);
        let base_vp = run_one(
            &spec,
            &PipelineConfig::baseline_vp_6_60(),
            &PredictorKind::DVtage,
            UOPS,
        );
        let eole = run_one(
            &spec,
            &PipelineConfig::eole_4_60(),
            &PredictorKind::DVtage,
            UOPS,
        );
        slowdowns.push(eole.speedup_over(&base_vp));
    }
    let gmean = bebop_uarch::gmean(&slowdowns);
    assert!(
        gmean > 0.9,
        "EOLE_4_60 should be within ~10% of Baseline_VP_6_60 on average, got {gmean:.3}"
    );
}

#[test]
fn spec_window_sizes_are_ordered_on_a_tight_strided_loop() {
    // Figure 7b's shape: no window < small window <= large window, on a workload
    // dominated by tight strided loops.
    let spec = WorkloadSpec::named_demo("fig7b-shape");
    let pipe = PipelineConfig::eole_4_60();
    let run_with_window = |size: bebop::SpecWindowSize| {
        let cfg = bebop::BlockDVtageConfig {
            spec_window: size,
            ..configs::optimistic_6p()
        };
        run_one(&spec, &pipe, &PredictorKind::BlockDVtage(cfg), UOPS)
    };
    let none = run_with_window(bebop::SpecWindowSize::Disabled);
    let small = run_with_window(bebop::SpecWindowSize::Entries(32));
    let inf = run_with_window(bebop::SpecWindowSize::Unbounded);
    assert!(
        none.vp.coverage() <= small.vp.coverage() + 0.02,
        "no window should not beat a 32-entry window ({:.3} vs {:.3})",
        none.vp.coverage(),
        small.vp.coverage()
    );
    assert!(
        small.cycles as f64 <= none.cycles as f64 * 1.02,
        "a 32-entry window should not be slower than no window"
    );
    assert!(inf.cycles <= none.cycles);
}

#[test]
fn all_36_benchmarks_run_under_the_headline_configuration() {
    for spec in bebop_trace::all_spec_benchmarks() {
        let stats = run_one(
            &spec,
            &PipelineConfig::eole_4_60(),
            &PredictorKind::BlockDVtage(configs::medium()),
            5_000,
        );
        assert_eq!(stats.uops, 5_000, "{} did not complete", spec.name);
        assert!(stats.uop_ipc() > 0.0 && stats.uop_ipc() <= 8.0);
    }
}
