//! Crash-safety and fault-tolerance tests of the resumable sweep engine.
//!
//! The headline property: a sweep killed at an arbitrary point — partial cell
//! set, journal torn mid-append — resumes losing only in-flight cells and
//! converges to a final ledger *byte-identical* to an uninterrupted run. The
//! kill points are seeded-random so the suite probes different crash shapes
//! on every seed while staying reproducible.

use bebop::{configs, PredictorKind};
use bebop_bench::sweep::{run_sweep_jobs, CellStatus, ReasonKind, SweepOptions, SweepRequest};
use bebop_bench::{FaultPlan, TraceStore};
use bebop_trace::WorkloadSpec;
use bebop_uarch::PipelineConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fs;
use std::path::PathBuf;

const UOPS: u64 = 1_500;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bebop-sweep-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A 3-workload × 3-variant grid (9 cells), small enough that the full suite
/// stays fast and structured enough to exercise baseline-vs-variant handling.
fn tiny_request() -> SweepRequest {
    let pipe = PipelineConfig::baseline_vp_6_60();
    SweepRequest {
        name: "tiny".to_string(),
        workloads: vec![
            WorkloadSpec::named_demo("swp-a"),
            WorkloadSpec::named_demo("swp-b"),
            WorkloadSpec::named_demo("swp-c"),
        ],
        variants: vec![
            ("D-VTAGE".to_string(), pipe.clone(), PredictorKind::DVtage),
            (
                "Small_4p".to_string(),
                pipe.clone(),
                PredictorKind::BlockDVtage(configs::small_4p()),
            ),
            (
                "Medium".to_string(),
                pipe,
                PredictorKind::BlockDVtage(configs::medium()),
            ),
        ],
        uops: UOPS,
    }
}

#[test]
fn uninterrupted_sweep_completes_and_is_idempotent() {
    let dir = tmp_dir("baseline");
    let req = tiny_request();
    let out = run_sweep_jobs(&req, &dir, None, &SweepOptions::default()).expect("sweep");
    assert_eq!((out.total, out.resumed, out.executed), (9, 0, 9));
    assert_eq!(out.resimulated, 0);
    assert!(out.complete);
    assert!(out.quarantined.is_empty());
    assert_eq!(out.simulated_uops, 9 * UOPS);
    let ledger = out.ledger_path.expect("complete sweep writes the ledger");
    assert!(ledger.exists());
    let bytes = fs::read(&ledger).unwrap();

    // A second run over the same directory resumes everything, simulates
    // nothing, and rewrites the identical ledger.
    let again = run_sweep_jobs(&req, &dir, None, &SweepOptions::default()).expect("resume");
    assert_eq!((again.resumed, again.executed), (9, 0));
    assert_eq!(again.simulated_uops, 0);
    assert_eq!(fs::read(&ledger).unwrap(), bytes);
    // Every cell carries real statistics and a digest.
    assert!(again
        .cells
        .iter()
        .all(|c| c.status == CellStatus::Ok && c.uops == UOPS && c.cycles > 0 && c.digest != 0));
    let _ = fs::remove_dir_all(&dir);
}

/// Simulates `kill -9` shapes: run part of the sweep, optionally tear bytes
/// off the journal tail (a crash mid-append), resume, and require the final
/// ledger to be byte-identical to the uninterrupted run's.
#[test]
fn killed_and_resumed_sweep_recovers_to_the_identical_ledger() {
    let req = tiny_request();

    // Reference: one uninterrupted run.
    let ref_dir = tmp_dir("kill-ref");
    let ref_out = run_sweep_jobs(&req, &ref_dir, None, &SweepOptions::default()).expect("ref");
    let ref_bytes = fs::read(ref_out.ledger_path.as_ref().unwrap()).unwrap();

    for seed in [1u64, 7, 42] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let dir = tmp_dir(&format!("kill-{seed}"));

        // Phase 1: the run that gets "killed" after a random number of cells.
        let survivors = rng.gen_range(1..9usize);
        let partial = run_sweep_jobs(
            &req,
            &dir,
            None,
            &SweepOptions {
                max_cells: Some(survivors),
                ..SweepOptions::default()
            },
        )
        .expect("partial");
        assert_eq!(partial.executed, survivors);
        assert!(!partial.complete);
        assert!(partial.ledger_path.is_none(), "no ledger before complete");

        // The kill lands mid-append on some runs: tear a random amount off
        // the journal tail (up to a whole record and change).
        let journal = dir.join("journal.bbl");
        let bytes = fs::read(&journal).unwrap();
        let tear = rng.gen_range(0..120usize).min(bytes.len());
        let kept = &bytes[..bytes.len() - tear];
        fs::write(&journal, kept).unwrap();
        // Only records whose trailing newline survived the tear are intact;
        // a tear can clip more than one record when lines are short.
        let intact = kept.iter().filter(|&&b| b == b'\n').count();
        let lost = survivors - intact;

        // Phase 2: resume to completion. Only in-flight work re-runs: the
        // torn record (if any) is lost, every fully journaled cell survives.
        let resumed = run_sweep_jobs(&req, &dir, None, &SweepOptions::default()).expect("resume");
        assert_eq!(
            resumed.resumed,
            survivors - lost,
            "seed {seed}: completed cells must survive the crash"
        );
        assert_eq!(resumed.executed, 9 - survivors + lost);
        assert_eq!(resumed.resimulated, 0);
        let partial_tail = kept.last().is_some_and(|&b| b != b'\n');
        assert_eq!(resumed.salvaged_bytes > 0, partial_tail);
        assert!(resumed.complete);

        // The recovered ledger is byte-identical to the uninterrupted one.
        let ledger = resumed.ledger_path.expect("complete");
        assert_eq!(
            fs::read(&ledger).unwrap(),
            ref_bytes,
            "seed {seed}: recovered ledger must be bit-identical"
        );

        // Phase 3: one more resume finds nothing to do.
        let done = run_sweep_jobs(&req, &dir, None, &SweepOptions::default()).expect("idempotent");
        assert_eq!((done.resumed, done.executed), (9, 0));
        let _ = fs::remove_dir_all(&dir);
    }
    let _ = fs::remove_dir_all(&ref_dir);
}

#[test]
fn faulty_store_and_poisoned_job_degrade_without_losing_the_sweep() {
    let req = tiny_request();
    let dir = tmp_dir("faulty");
    let store_dir = tmp_dir("faulty-store");
    let mut store = TraceStore::open(&store_dir).expect("open store");
    store.set_faults(
        FaultPlan::seeded(3)
            .with_read_errors(4)
            .with_write_errors(4)
            .with_short_reads(5)
            .with_corruption(5),
    );

    // Job 4 is poisoned: it must be quarantined, not abort the run.
    let opts = SweepOptions {
        faults: Some(FaultPlan::seeded(3).with_panic_job(4)),
        ..SweepOptions::default()
    };
    let out = run_sweep_jobs(&req, &dir, Some(&store), &opts).expect("faulty sweep");
    assert!(out.complete, "faults must degrade, never lose the sweep");
    assert_eq!(out.executed, 9);
    assert_eq!(out.quarantined.len(), 1, "exactly the poisoned job");
    assert_eq!(out.quarantined[0].1, ReasonKind::Panic);
    assert!(out.quarantined[0].2.contains("injected"));
    assert_eq!(
        out.cells
            .iter()
            .filter(|c| c.status == CellStatus::Ok)
            .count(),
        8
    );
    // The quarantined cell is variant 1 × workload 1 (job index 4 = 1*3+1).
    assert!(out.quarantined[0].0.contains("swp-b"));
    assert!(out.quarantined[0].0.contains("Small_4p"));
    assert!(out.ledger_path.is_some());

    // Resuming with a healthy store re-runs nothing — quarantine is a
    // terminal, journaled outcome, not missing work.
    let healthy = TraceStore::open(&store_dir).expect("reopen");
    let resumed = run_sweep_jobs(&req, &dir, Some(&healthy), &SweepOptions::default())
        .expect("resume after faults");
    assert_eq!((resumed.resumed, resumed.executed), (9, 0));
    assert_eq!(resumed.quarantined.len(), 1);

    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&store_dir);
}

#[test]
fn stalled_cell_is_timed_out_by_the_watchdog_and_only_it() {
    let req = tiny_request();
    let dir = tmp_dir("stall");

    // Job 5 (variant 1 × workload 2) stalls: it makes no committed-µop
    // progress, so the watchdog must cancel it within the cell timeout while
    // every other cell completes normally.
    let opts = SweepOptions {
        faults: Some(FaultPlan::seeded(11).with_stall_job(5)),
        cell_timeout: Some(std::time::Duration::from_millis(100)),
        ..SweepOptions::default()
    };
    let out = run_sweep_jobs(&req, &dir, None, &opts).expect("stalled sweep");
    assert!(
        out.complete,
        "a timed-out cell is terminal, not missing work"
    );
    assert_eq!(out.executed, 9);
    assert_eq!(out.quarantined.len(), 1, "exactly the stalled cell");
    assert_eq!(out.quarantined[0].1, ReasonKind::Timeout);
    assert_eq!(out.quarantined[0].2, "timed_out");
    assert!(out.quarantined[0].0.contains("swp-c"), "job 5 = v1 × w2");
    assert!(out.quarantined[0].0.contains("Small_4p"));
    assert_eq!(
        out.cells
            .iter()
            .filter(|c| c.status == CellStatus::Ok)
            .count(),
        8,
        "the other eight cells must complete"
    );

    // The timeout is journaled distinctly from a panic and survives resume.
    let resumed = run_sweep_jobs(&req, &dir, None, &SweepOptions::default()).expect("resume");
    assert_eq!((resumed.resumed, resumed.executed), (9, 0));
    assert_eq!(resumed.quarantined.len(), 1);
    assert_eq!(resumed.quarantined[0].1, ReasonKind::Timeout);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn sweep_cells_checkpoint_and_produce_identical_ledgers() {
    // A sweep with intra-cell checkpointing enabled produces the same ledger
    // bytes as one without: checkpoints change durability, never results.
    let req = tiny_request();
    let plain_dir = tmp_dir("ckpt-plain");
    let ckpt_dir = tmp_dir("ckpt-on");
    let plain = run_sweep_jobs(&req, &plain_dir, None, &SweepOptions::default()).expect("plain");
    let ckpt = run_sweep_jobs(
        &req,
        &ckpt_dir,
        None,
        &SweepOptions {
            // Far smaller than the budget, so every cell snapshots repeatedly.
            checkpoint_every: 256,
            ..SweepOptions::default()
        },
    )
    .expect("checkpointed");
    assert!(plain.complete && ckpt.complete);
    assert_eq!(
        fs::read(plain.ledger_path.as_ref().unwrap()).unwrap(),
        fs::read(ckpt.ledger_path.as_ref().unwrap()).unwrap(),
        "checkpointing must not change any result bit"
    );
    // Completed cells delete their snapshots: the checkpoint directory holds
    // no stale state to resurrect.
    let ckpt_files = fs::read_dir(ckpt_dir.join("ckpt"))
        .map(|d| d.count())
        .unwrap_or(0);
    assert_eq!(
        ckpt_files, 0,
        "completed cells must discard their snapshots"
    );
    let _ = fs::remove_dir_all(&plain_dir);
    let _ = fs::remove_dir_all(&ckpt_dir);
}

#[test]
fn mismatched_sweep_directories_are_refused() {
    let dir = tmp_dir("mismatch");
    let req = tiny_request();
    run_sweep_jobs(&req, &dir, None, &SweepOptions::default()).expect("first sweep");

    // Same directory, different grid (budget changed → every JobKey changed):
    // the manifest check must refuse to mix the two result sets.
    let other = SweepRequest {
        uops: UOPS + 1,
        ..tiny_request()
    };
    let err = run_sweep_jobs(&other, &dir, None, &SweepOptions::default())
        .expect_err("a different sweep must be refused");
    assert!(err.to_string().contains("manifest mismatch"), "{err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn garbage_in_the_journal_is_salvaged_not_trusted() {
    let dir = tmp_dir("garbage");
    let req = tiny_request();
    let partial = run_sweep_jobs(
        &req,
        &dir,
        None,
        &SweepOptions {
            max_cells: Some(3),
            ..SweepOptions::default()
        },
    )
    .expect("partial");
    assert_eq!(partial.executed, 3);

    // Append garbage plus a torn half-record, as a crashed writer might.
    let journal = dir.join("journal.bbl");
    let mut bytes = fs::read(&journal).unwrap();
    bytes.extend_from_slice(b"not a record at all\nC 012345");
    fs::write(&journal, &bytes).unwrap();

    let out = run_sweep_jobs(&req, &dir, None, &SweepOptions::default()).expect("resume");
    assert_eq!(out.resumed, 3, "valid records before the garbage survive");
    assert!(out.salvaged_bytes > 0, "the garbage tail must be truncated");
    assert!(out.complete);
    let _ = fs::remove_dir_all(&dir);
}
