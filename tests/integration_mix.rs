//! Differential suite for the multi-programmed mix mode and the sharded
//! predictor storage.
//!
//! Three families of guarantees:
//!
//! 1. **Single-context identity** — a one-context [`MixSpec`] stream is
//!    bit-identical to the plain generator stream (pinned against the golden
//!    hash recorded before either the wrong-path or the mix mode existed),
//!    and simulating it through the whole mix machinery (ASID-tagged trace,
//!    mix-configured pipeline, sharded `ShardedTable`-backed predictor with
//!    `shards = 1`) reproduces today's `SimStats` bit-for-bit for every
//!    predictor kind — including the pre-PR golden values for 429.mcf.
//! 2. **Sharding is layout-only** — under the shared policy, every shard
//!    count simulates identically, even over a genuinely multi-programmed
//!    two-context trace (the flat → (shard, slot) mapping is a bijection).
//! 3. **Policies divide storage as advertised** — partitioned contexts can
//!    never steal each other's entries; fully shared contexts demonstrably
//!    do; and every run's per-context statistics sum to its aggregate.

use bebop::{
    configs, run_one, run_source, run_source_with, MixSpec, PipelineConfig, PredictorKind,
    SharingPolicy, UopSource, WorkloadSpec,
};

const UOPS: u64 = 20_000;
const QUANTUM: u64 = 1_000;

fn all_kinds() -> Vec<PredictorKind> {
    vec![
        PredictorKind::None,
        PredictorKind::Perfect,
        PredictorKind::LastValue,
        PredictorKind::Stride,
        PredictorKind::TwoDeltaStride,
        PredictorKind::Vtage,
        PredictorKind::VtageStrideHybrid,
        PredictorKind::DVtage,
        PredictorKind::BlockDVtage(configs::medium()),
        // The sharded-by-policy variants of the refactored block predictor:
        // with one context all three policies must equal the monolithic table.
        PredictorKind::BlockDVtage(configs::medium_mix(SharingPolicy::Shared, 1)),
        PredictorKind::BlockDVtage(configs::medium_mix(SharingPolicy::Partitioned, 1)),
        PredictorKind::BlockDVtage(configs::medium_mix(SharingPolicy::Tagged, 1)),
    ]
}

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn single_context_mix_stream_matches_the_pre_mix_golden_hash() {
    // The same hash function and golden value as the pre-wrong-path baseline
    // in `integration_wrong_path.rs`: a one-context mix must reproduce the
    // plain stream byte for byte, with every µ-op still tagged ASID 0.
    let spec = WorkloadSpec::named_demo("golden");
    let mix = MixSpec::new("golden-solo", QUANTUM, vec![spec]);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for u in mix.generator().take(50_000) {
        assert_eq!(u.asid, 0, "a one-context mix must stay ASID 0");
        assert!(!u.wrong_path);
        h = fnv(h, &u.seq.to_le_bytes());
        h = fnv(h, &u.pc.to_le_bytes());
        h = fnv(h, &u.value.to_le_bytes());
        h = fnv(h, &[u.uop_idx, u.inst_num_uops, u.inst_len]);
        if let Some(m) = u.mem {
            h = fnv(h, &m.addr.to_le_bytes());
        }
        if let Some(b) = u.branch {
            h = fnv(h, &[b.taken as u8]);
            h = fnv(h, &b.target.to_le_bytes());
        }
    }
    assert_eq!(
        h, 0x56e8_69a2_80fb_8b60,
        "the one-context mix stream diverged from the pre-mix golden stream"
    );
}

#[test]
fn single_context_mix_simulates_bit_identically_for_every_predictor_kind() {
    // Plain path: live generation, no mix configuration — exactly what every
    // run before this PR executed. Mix path: one-context MixSpec recorded to
    // an (ASID-lane-free) trace buffer, replayed through a mix-configured
    // pipeline. Both must produce identical SimStats for every predictor.
    let spec = WorkloadSpec::named_demo("mix-diff");
    let mix = MixSpec::new("solo", QUANTUM, vec![spec.clone()]);
    let buf = mix.record(UOPS);
    assert_eq!(buf.committed_len() as u64, UOPS);

    let plain_pipe = PipelineConfig::baseline_vp_6_60();
    for sharing in SharingPolicy::ALL {
        let mix_pipe = plain_pipe.clone().with_mix(sharing);
        for kind in all_kinds() {
            let plain = run_source(UopSource::Live(&spec), &plain_pipe, &kind, UOPS);
            let mixed = run_source(UopSource::Replay(&buf), &mix_pipe, &kind, UOPS);
            assert_eq!(
                plain,
                mixed,
                "{} diverged through the mix machinery under {}",
                kind.label(),
                sharing.label()
            );
            assert_eq!(mixed.context_switches, 0, "one context never switches");
            assert!(mixed.context_totals_consistent());
            assert_eq!(mixed.contexts[0].uops, UOPS, "slot 0 holds everything");
        }
    }
}

#[test]
fn mcf_golden_values_survive_the_mix_machinery() {
    // The exact golden values `integration_wrong_path.rs` pins for a plain
    // run (recorded on main before the wrong-path mode existed), reproduced
    // here through a one-context mix trace on a mix-configured pipeline with
    // the sharded (shards = 1 ... and 8) predictor infrastructure enabled.
    let spec = bebop::spec_benchmark("429.mcf");
    let mix = MixSpec::new("mcf-solo", QUANTUM, vec![spec.clone()]);
    let buf = mix.record(30_000);
    let pipe = PipelineConfig::baseline_vp_6_60().with_mix(SharingPolicy::Shared);
    let stats = run_source(
        UopSource::Replay(&buf),
        &pipe,
        &PredictorKind::DVtage,
        30_000,
    );
    assert_eq!(
        stats.cycles, 293_531,
        "cycle count changed vs the golden run"
    );
    assert_eq!(stats.branch_flushes, 372);
    assert_eq!(stats.vp_flushes, 0);
    assert_eq!(
        (
            stats.vp.eligible,
            stats.vp.predicted,
            stats.vp.correct,
            stats.vp.incorrect,
            stats.vp.free_load_immediates
        ),
        (20_400, 147, 147, 0, 1_597),
        "value-prediction statistics changed vs the golden run"
    );
    // And the plain (non-mix) entry point still agrees with itself.
    let plain = run_one(
        &spec,
        &PipelineConfig::baseline_vp_6_60(),
        &PredictorKind::DVtage,
        30_000,
    );
    assert_eq!(plain.cycles, stats.cycles);
}

#[test]
fn shard_count_is_behaviour_invariant_under_the_shared_policy() {
    // The strong form over a genuinely multi-programmed trace: two contexts
    // interleaved with overlapping address spaces, simulated with 1-, 2- and
    // 8-shard layouts of the same shared table. The flat entry space is
    // identical (locate() is a bijection), so the runs must be bit-identical.
    let mix = MixSpec::pair(
        QUANTUM,
        bebop::spec_benchmark("171.swim"),
        bebop::spec_benchmark("403.gcc"),
    );
    let buf = mix.record(UOPS);
    let pipe = PipelineConfig::baseline_vp_6_60().with_mix(SharingPolicy::Shared);
    let mut results = Vec::new();
    for shards in [1usize, 2, 8] {
        let mut cfg = configs::medium();
        cfg.shards = shards;
        let kind = PredictorKind::BlockDVtage(cfg);
        results.push(run_source(UopSource::Replay(&buf), &pipe, &kind, UOPS));
    }
    assert_eq!(results[0], results[1], "2 shards diverged from 1");
    assert_eq!(results[1], results[2], "8 shards diverged from 2");
    assert!(
        results[0].context_switches > 0,
        "the mix must really switch"
    );
}

#[test]
fn sharing_policies_divide_the_predictor_as_advertised() {
    let mix = MixSpec::pair(
        QUANTUM,
        bebop::spec_benchmark("171.swim"),
        bebop::spec_benchmark("186.crafty"),
    );
    let buf = mix.record(UOPS);

    let mut steals_by_policy = Vec::new();
    for sharing in SharingPolicy::ALL {
        let pipe = PipelineConfig::baseline_vp_6_60().with_mix(sharing);
        let mut predictor = PredictorKind::BlockDVtage(configs::medium_mix(sharing, 2)).build();
        let stats = run_source_with(UopSource::Replay(&buf), &pipe, &mut predictor, UOPS);
        assert!(stats.context_totals_consistent(), "{}", sharing.label());
        assert!(stats.context_switches > 0);
        assert!(stats.contexts[0].uops > 0 && stats.contexts[1].uops > 0);
        let d = predictor.as_block_dvtage().expect("block predictor");
        // Occupancy is visible per shard; sums over both tables are sane.
        let counters = d.lvt_shard_counters();
        assert_eq!(counters.occupancy.len(), configs::MIX_SHARDS);
        assert!(counters.occupancy.iter().sum::<u64>() > 0);
        steals_by_policy.push((sharing, d.total_steals()));
    }

    let shared = steals_by_policy[0].1;
    let partitioned = steals_by_policy[1].1;
    assert!(
        shared > 0,
        "two contexts with overlapping PCs sharing one table must steal entries"
    );
    assert_eq!(
        partitioned, 0,
        "partitioned contexts are confined to their own shards — stealing is structurally impossible"
    );
}

#[test]
fn mix_replay_is_bit_identical_to_live_interleaving() {
    // The mix analogue of the replay-fidelity suite: live MixGenerator
    // streaming vs the recorded trace buffer, same SimStats for a sample of
    // predictor kinds (live mix streaming has no UopSource, so drive the
    // comparison through identical replay buffers recorded twice).
    let mix = MixSpec::pair(
        QUANTUM,
        WorkloadSpec::named_demo("replay-a"),
        bebop::spec_benchmark("429.mcf"),
    );
    let once = mix.record(UOPS);
    let twice = mix.record(UOPS);
    assert_eq!(
        once.replay().collect::<Vec<_>>(),
        twice.replay().collect::<Vec<_>>(),
        "mix recording is not deterministic"
    );
    let pipe = PipelineConfig::baseline_vp_6_60().with_mix(SharingPolicy::Tagged);
    for kind in [
        PredictorKind::DVtage,
        PredictorKind::BlockDVtage(configs::medium_mix(SharingPolicy::Tagged, 2)),
    ] {
        let a = run_source(UopSource::Replay(&once), &pipe, &kind, UOPS);
        let b = run_source(UopSource::Replay(&twice), &pipe, &kind, UOPS);
        assert_eq!(a, b, "{} diverged across recordings", kind.label());
    }
}
