//! Integration tests asserting the *shape* of the paper's headline results on a
//! reduced scale: who wins, roughly by how much, and where the crossovers are.

use bebop::{compare, configs, PredictorKind, SpeedupSummary};
use bebop_trace::{benchmark_class, spec_benchmark, BenchClass};
use bebop_uarch::PipelineConfig;

// Long enough for the forward-probabilistic confidence counters (~130 correct
// predictions to saturate) to leave their warm-up phase.
const UOPS: u64 = 120_000;

/// A representative slice of Table II: two of each gain class.
fn slice() -> Vec<bebop_trace::WorkloadSpec> {
    [
        "171.swim",
        "173.applu",
        "401.bzip2",
        "403.gcc",
        "429.mcf",
        "186.crafty",
    ]
    .iter()
    .map(|n| spec_benchmark(n))
    .collect()
}

#[test]
fn figure8_shape_final_configs_beat_the_baseline_on_average() {
    let specs = slice();
    let results = compare(
        &specs,
        &PipelineConfig::baseline_6_60(),
        &PredictorKind::None,
        &PipelineConfig::eole_4_60(),
        &PredictorKind::BlockDVtage(configs::medium()),
        UOPS,
    );
    let summary = SpeedupSummary::from_results(&results);
    // Paper: ~1.11 gmean over all 36, with up to ~1.6 peaks; on this slice the
    // gmean must clearly exceed 1 and the best benchmark must gain substantially.
    assert!(
        summary.gmean() > 1.05,
        "Medium + EOLE_4_60 should beat Baseline_6_60 on average, got {:.3}",
        summary.gmean()
    );
    assert!(
        summary.max() > 1.2,
        "at least one benchmark should gain substantially, got max {:.3}",
        summary.max()
    );
}

#[test]
fn figure8_shape_high_gain_class_outperforms_low_gain_class() {
    let specs = slice();
    let results = compare(
        &specs,
        &PipelineConfig::baseline_6_60(),
        &PredictorKind::None,
        &PipelineConfig::eole_4_60(),
        &PredictorKind::BlockDVtage(configs::medium()),
        UOPS,
    );
    let mut high = Vec::new();
    let mut low = Vec::new();
    for r in &results {
        match benchmark_class(&r.name) {
            BenchClass::HighVpGain => high.push(r.speedup()),
            BenchClass::LowVpGain => low.push(r.speedup()),
            BenchClass::ModerateVpGain => {}
        }
    }
    let high_g = bebop_uarch::gmean(&high);
    let low_g = bebop_uarch::gmean(&low);
    assert!(
        high_g > low_g,
        "high-VP-gain benchmarks ({high_g:.3}) must gain more than low-gain ones ({low_g:.3})"
    );
}

#[test]
fn figure5a_shape_dvtage_is_at_least_as_good_as_2d_stride_on_average() {
    let specs = slice();
    let base = PipelineConfig::baseline_6_60();
    let vp = PipelineConfig::baseline_vp_6_60();
    let stride = SpeedupSummary::from_results(&compare(
        &specs,
        &base,
        &PredictorKind::None,
        &vp,
        &PredictorKind::TwoDeltaStride,
        UOPS,
    ));
    let dvtage = SpeedupSummary::from_results(&compare(
        &specs,
        &base,
        &PredictorKind::None,
        &vp,
        &PredictorKind::DVtage,
        UOPS,
    ));
    // The paper reports D-VTAGE on par with or better than 2d-Stride; on this
    // reduced slice and µ-op budget allow a small tolerance for warm-up noise.
    assert!(
        dvtage.gmean() >= stride.gmean() - 0.08,
        "D-VTAGE ({:.3}) should not lose to 2d-Stride ({:.3})",
        dvtage.gmean(),
        stride.gmean()
    );
}

#[test]
fn figure5a_shape_no_predictor_causes_a_large_slowdown() {
    // "First, no slowdown is observed with D-VTAGE" — D-VTAGE must stay close to or
    // above 1.0 on every benchmark of the slice; the simpler predictors are allowed
    // slightly more noise but must not collapse either.
    let specs = slice();
    for (kind, floor) in [
        (PredictorKind::TwoDeltaStride, 0.85),
        (PredictorKind::Vtage, 0.85),
        (PredictorKind::DVtage, 0.93),
    ] {
        let results = compare(
            &specs,
            &PipelineConfig::baseline_6_60(),
            &PredictorKind::None,
            &PipelineConfig::baseline_vp_6_60(),
            &kind,
            UOPS,
        );
        let summary = SpeedupSummary::from_results(&results);
        assert!(
            summary.min() > floor,
            "{} caused a large slowdown: min {:.3}",
            kind.label(),
            summary.min()
        );
    }
}

#[test]
fn figure7a_shape_recovery_policies_are_close_to_each_other() {
    // Paper: "the differences between the realistic policies are marginal".
    let specs = vec![spec_benchmark("401.bzip2"), spec_benchmark("173.applu")];
    let eole = PipelineConfig::eole_4_60();
    let mut gmeans = Vec::new();
    for (_, cfg) in configs::fig7a_sweep() {
        let results = compare(
            &specs,
            &eole,
            &PredictorKind::DVtage,
            &eole,
            &PredictorKind::BlockDVtage(cfg),
            UOPS,
        );
        gmeans.push(SpeedupSummary::from_results(&results).gmean());
    }
    let max = gmeans.iter().cloned().fold(f64::MIN, f64::max);
    let min = gmeans.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max - min < 0.12,
        "recovery policies should be within a few percent of each other: {gmeans:?}"
    );
}

#[test]
fn table3_storage_and_ordering() {
    let rows: Vec<(String, f64)> = configs::table3_configs()
        .into_iter()
        .map(|(n, c)| (n.to_string(), c.storage_kb()))
        .collect();
    // Small < Medium < Large, and Medium is the ~32 KB headline budget.
    assert!(rows[0].1 < rows[2].1 && rows[1].1 < rows[2].1 && rows[2].1 < rows[3].1);
    assert!((28.0..38.0).contains(&rows[2].1));
}
