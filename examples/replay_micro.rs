//! Microbenchmark of the trace fast path: live generation vs recorded-buffer
//! replay, at the raw stream level and under real simulations.
//!
//! ```text
//! cargo run --release -p bebop --example replay_micro
//! ```
//!
//! Each simulation pair also asserts that live and replayed `SimStats` are
//! bit-identical, so this doubles as a quick replay-fidelity check.

use bebop::{
    configs, run_source, PipelineConfig, PredictorKind, TraceBuffer, UopSource, WorkloadSpec,
};
use bebop_trace::TraceGenerator;
use std::time::Instant;

fn bench(
    label: &str,
    spec: &WorkloadSpec,
    buf: &TraceBuffer,
    kind: &PredictorKind,
    n: u64,
    reps: u32,
) {
    let t = Instant::now();
    let mut s = None;
    for _ in 0..reps {
        s = Some(run_source(
            UopSource::Live(spec),
            &PipelineConfig::eole_4_60(),
            kind,
            n,
        ));
    }
    let live = (reps as u64 * n) as f64 / t.elapsed().as_secs_f64() / 1e6;
    let t = Instant::now();
    let mut s2 = None;
    for _ in 0..reps {
        s2 = Some(run_source(
            UopSource::Replay(buf),
            &PipelineConfig::eole_4_60(),
            kind,
            n,
        ));
    }
    assert_eq!(s, s2);
    let rep = (reps as u64 * n) as f64 / t.elapsed().as_secs_f64() / 1e6;
    println!("sim {label:<14} live {live:.2} / replay {rep:.2} Muops/s");
}

fn main() {
    let spec = WorkloadSpec::named_demo("micro");
    let n = 200_000u64;
    let reps = 10;

    let t = Instant::now();
    let c: u64 = TraceGenerator::new(&spec)
        .take(n as usize)
        .map(|u| u.value & 1)
        .sum();
    println!(
        "gen drain:    {:.1} Muops/s (chk {c})",
        n as f64 / t.elapsed().as_secs_f64() / 1e6
    );
    let buf = TraceBuffer::record(&spec, n);
    let t = Instant::now();
    let c: u64 = buf.replay().map(|u| u.value & 1).sum();
    println!(
        "replay drain: {:.1} Muops/s (chk {c})",
        n as f64 / t.elapsed().as_secs_f64() / 1e6
    );

    bench("none", &spec, &buf, &PredictorKind::None, n, reps);
    bench("D-VTAGE", &spec, &buf, &PredictorKind::DVtage, n, reps);
    bench(
        "BeBoP medium",
        &spec,
        &buf,
        &PredictorKind::BlockDVtage(configs::medium()),
        n,
        reps,
    );
    bench(
        "BeBoP opt",
        &spec,
        &buf,
        &PredictorKind::BlockDVtage(configs::optimistic_6p()),
        n,
        reps,
    );
}
