//! Loop kernels: the workloads the paper's introduction motivates — tight
//! floating-point loops with strided values — compared against a branchy,
//! pointer-chasing integer workload, across every predictor class.
//!
//! ```text
//! cargo run --release --example loop_kernels
//! ```

use bebop::{run_one, PredictorKind};
use bebop_trace::{BranchProfile, InstMix, MemoryProfile, ValueProfile, WorkloadSpec};
use bebop_uarch::PipelineConfig;

fn kernels() -> Vec<WorkloadSpec> {
    // A streaming, strided FP kernel (think swim/applu inner loops).
    let mut stream = WorkloadSpec::new("fp_stream_kernel", 101);
    stream.is_fp = true;
    stream.parallel_chains = 2;
    stream.mix = InstMix::fp_default();
    stream.values = ValueProfile::all_strided();
    stream.branches = BranchProfile::predictable();
    stream.memory = MemoryProfile::streaming();

    // A branchy integer kernel with an irregular working set (think mcf/omnetpp).
    let mut chase = WorkloadSpec::new("int_pointer_chase", 202);
    chase.parallel_chains = 2;
    chase.values = ValueProfile::all_random();
    chase.branches = BranchProfile::branchy();
    chase.memory = MemoryProfile::irregular();

    // A mixed kernel with control-flow-correlated values, where VTAGE-style
    // components matter.
    let mut mixed = WorkloadSpec::new("mixed_ctx_kernel", 303);
    mixed.values = ValueProfile::mixed();
    vec![stream, chase, mixed]
}

fn main() {
    let uops = 120_000;
    let baseline_pipe = PipelineConfig::baseline_6_60();
    let vp_pipe = PipelineConfig::baseline_vp_6_60();
    let predictors = [
        PredictorKind::LastValue,
        PredictorKind::TwoDeltaStride,
        PredictorKind::Vtage,
        PredictorKind::DVtage,
        PredictorKind::Perfect,
    ];

    for spec in kernels() {
        let base = run_one(&spec, &baseline_pipe, &PredictorKind::None, uops);
        println!("\n{}  (baseline IPC {:.3})", spec.name, base.inst_ipc());
        for kind in &predictors {
            let stats = run_one(&spec, &vp_pipe, kind, uops);
            println!(
                "  {:<16} speedup {:.3}  coverage {:>5.1}%  accuracy {:>6.2}%",
                kind.label(),
                stats.speedup_over(&base),
                stats.vp.coverage() * 100.0,
                stats.vp.accuracy() * 100.0
            );
        }
    }
}
