//! Quickstart: simulate one benchmark on the baseline superscalar and on the
//! EOLE + BeBoP D-VTAGE pipeline, and print the headline comparison.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bebop::{configs, run_one, PredictorKind};
use bebop_trace::spec_benchmark;
use bebop_uarch::PipelineConfig;

fn main() {
    let spec = spec_benchmark("171.swim");
    let uops = 200_000;

    println!("workload: {} ({uops} µ-ops)", spec.name);

    let baseline = run_one(
        &spec,
        &PipelineConfig::baseline_6_60(),
        &PredictorKind::None,
        uops,
    );
    println!(
        "Baseline_6_60          : {:>8} cycles, IPC {:.3}",
        baseline.cycles,
        baseline.inst_ipc()
    );

    let medium = configs::medium();
    println!(
        "BeBoP D-VTAGE (Medium) : {:.2} KB of predictor storage",
        medium.storage_kb()
    );
    let bebop = run_one(
        &spec,
        &PipelineConfig::eole_4_60(),
        &PredictorKind::BlockDVtage(medium),
        uops,
    );
    println!(
        "EOLE_4_60 + BeBoP      : {:>8} cycles, IPC {:.3}",
        bebop.cycles,
        bebop.inst_ipc()
    );
    println!(
        "speedup {:.3}, VP coverage {:.1}%, VP accuracy {:.2}%, {} value-misprediction squashes",
        bebop.speedup_over(&baseline),
        bebop.vp.coverage() * 100.0,
        bebop.vp.accuracy() * 100.0,
        bebop.vp_flushes
    );
}
