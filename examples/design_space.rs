//! Design-space exploration: sweep the BeBoP D-VTAGE geometry (predictions per
//! entry, speculative window size, stride width) on a single workload and print the
//! storage/performance trade-off, i.e. a miniature of Figures 6 and 7 plus
//! Table III.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use bebop::{configs, run_one, BlockDVtageConfig, PredictorKind, SpecWindowSize};
use bebop_trace::spec_benchmark;
use bebop_uarch::PipelineConfig;

fn speedup(cfg: BlockDVtageConfig, uops: u64) -> (f64, f64) {
    let spec = spec_benchmark("173.applu");
    let pipe = PipelineConfig::eole_4_60();
    let base = run_one(
        &spec,
        &PipelineConfig::baseline_6_60(),
        &PredictorKind::None,
        uops,
    );
    let kb = cfg.storage_kb();
    let stats = run_one(&spec, &pipe, &PredictorKind::BlockDVtage(cfg), uops);
    (stats.speedup_over(&base), kb)
}

fn main() {
    let uops = 120_000;
    println!(
        "BeBoP D-VTAGE design space on 173.applu ({uops} µ-ops), speedup over Baseline_6_60\n"
    );

    println!("Predictions per entry (Npred):");
    for npred in [4usize, 6, 8] {
        let cfg = BlockDVtageConfig {
            npred,
            ..configs::medium()
        };
        let (s, kb) = speedup(cfg, uops);
        println!("  Npred={npred}: speedup {s:.3} at {kb:.1} KB");
    }

    println!("\nSpeculative window size (DnRDnR):");
    for (label, size) in [
        ("none", SpecWindowSize::Disabled),
        ("16", SpecWindowSize::Entries(16)),
        ("32", SpecWindowSize::Entries(32)),
        ("56", SpecWindowSize::Entries(56)),
        ("inf", SpecWindowSize::Unbounded),
    ] {
        let cfg = BlockDVtageConfig {
            spec_window: size,
            ..configs::medium()
        };
        let (s, _) = speedup(cfg, uops);
        println!("  window {label:>4}: speedup {s:.3}");
    }

    println!("\nPartial stride width:");
    for bits in [8u32, 16, 32, 64] {
        let cfg = BlockDVtageConfig {
            stride_bits: bits,
            ..configs::medium()
        };
        let (s, kb) = speedup(cfg, uops);
        println!("  {bits:>2}-bit strides: speedup {s:.3} at {kb:.1} KB");
    }

    println!("\nTable III configurations:");
    for (name, cfg) in configs::table3_configs() {
        let (s, kb) = speedup(cfg, uops);
        println!("  {name:<9} speedup {s:.3} at {kb:.2} KB");
    }
}
