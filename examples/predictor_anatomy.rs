//! Predictor anatomy: drive a block-based D-VTAGE predictor directly (outside the
//! pipeline) to show how BeBoP attributes predictions to µ-ops with byte-index
//! tags, how the speculative window keeps strided chains alive across in-flight
//! instances, and how confidence gates prediction use.
//!
//! ```text
//! cargo run --release --example predictor_anatomy
//! ```

use bebop::{configs, BlockDVtage};
use bebop_isa::{fetch_block_pc, ArchReg, DynUop, Uop, UopKind};
use bebop_uarch::{PredictCtx, ValuePredictor};

fn uop(seq: u64, pc: u64, value: u64) -> DynUop {
    DynUop::new(
        seq,
        pc,
        8,
        0,
        1,
        Uop::new(UopKind::Load, Some(ArchReg::int(1)), &[ArchReg::int(2)]),
        value,
    )
}

fn ctx(seq: u64, pc: u64, new_block: bool) -> PredictCtx {
    PredictCtx {
        seq,
        fetch_block_pc: fetch_block_pc(pc, 16),
        new_fetch_block: new_block,
        global_history: 0,
        path_history: 0,
        asid: 0,
    }
}

fn main() {
    let mut predictor = BlockDVtage::new(configs::medium());
    println!(
        "block-based D-VTAGE (Medium): {:.2} KB\n",
        predictor.config().storage_kb()
    );

    // A fetch block with two loads at bytes 0 and 8, both walking arrays with
    // strides 8 and 16.
    let (mut v1, mut v2) = (0u64, 1000u64);
    let mut seq = 0u64;

    println!("training phase (predict + retire each instance):");
    for i in 0..200u64 {
        let u1 = uop(seq, 0x40_1000, v1);
        let u2 = uop(seq + 1, 0x40_1008, v2);
        let p1 = predictor.predict(&ctx(seq, 0x40_1000, true), &u1);
        let p2 = predictor.predict(&ctx(seq + 1, 0x40_1008, false), &u2);
        if i % 50 == 0 {
            println!(
                "  instance {i:>3}: byte0 -> {p1:?} (actual {v1}), byte8 -> {p2:?} (actual {v2})"
            );
        }
        predictor.train(&u1, v1, p1);
        predictor.train(&u2, v2, p2);
        seq += 2;
        v1 += 8;
        v2 += 16;
    }

    println!("\nsix instances in flight at once (speculative window at work):");
    for _ in 0..6 {
        let u1 = uop(seq, 0x40_1000, v1);
        let u2 = uop(seq + 1, 0x40_1008, v2);
        let p1 = predictor.predict(&ctx(seq, 0x40_1000, true), &u1);
        let p2 = predictor.predict(&ctx(seq + 1, 0x40_1008, false), &u2);
        println!(
            "  predicted ({p1:?}, {p2:?})  actual ({v1}, {v2})  {}",
            if p1 == Some(v1) && p2 == Some(v2) {
                "ok"
            } else {
                "miss"
            }
        );
        seq += 2;
        v1 += 8;
        v2 += 16;
    }
    println!(
        "\nspeculative-window hit rate so far: {:.1}%",
        predictor.window_hit_rate() * 100.0
    );
}
